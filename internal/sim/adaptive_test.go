package sim

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fti"
	"repro/internal/model"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/sz"
)

// jacobiSystem is the adaptive tests' workload: a ~930-iteration
// failure-free Jacobi solve, long enough for the controller's
// estimators to converge and for mid-run compression drift to matter.
func jacobiSystem() (*sparse.CSR, []float64) {
	a := sparse.Poisson2D(16)
	return a, sparse.OnesRHS(a.Rows)
}

func newManagedJacobi(t *testing.T, a *sparse.CSR, b []float64, scheme core.Scheme) (*solver.Stationary, *core.Manager) {
	t.Helper()
	s, err := solver.NewStationary(solver.KindJacobi, a, b, nil, 0, solver.Options{RTol: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewManager(core.Config{
		Scheme:   scheme,
		SZParams: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4},
	}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	return s, m
}

// adaptiveTestMTTI is the true injected MTTI. The controller is never
// told it: it starts from conservativeControllerConfig's prior and
// learns the rest from observed failures and censored runtime.
const adaptiveTestMTTI = 150.0

// conservativeControllerConfig is the deployment-style configuration
// the acceptance tests run with: a pessimistic prior MTTI 1.5× below
// the truth. When λ is unknown, starting pessimistic is the cheap
// direction — over-checkpointing early costs only the checkpoint time,
// while an optimistic prior risks long rollbacks before the first
// failures correct it — and the censored estimator relaxes the rate as
// failure-free time accumulates.
func conservativeControllerConfig() adapt.Config {
	return adapt.Config{PriorMTTI: 100, PriorWeight: 1}
}

// failureTrace pre-draws one seed's failure times as absolute virtual
// seconds, far past any plausible run end. Every policy compared under
// a seed then faces the identical failure trace — the paper's
// controlled-trace methodology — so sweep differences measure
// checkpoint-policy quality only.
func failureTrace(seed int64) []float64 {
	inj := failure.NewInjector(adaptiveTestMTTI, seed)
	var times []float64
	now := 0.0
	for now < 50000 {
		now = inj.Next(now)
		times = append(times, now)
	}
	return times
}

// runJacobiSim executes one managed Jacobi run: fixed interval when
// fixedInterval > 0, adaptive when ctrl is non-nil. ckptCost maps the
// live solver to the simulated per-checkpoint cost, so tests can model
// a compression ratio that drifts with convergence.
func runJacobiSim(t *testing.T, seed int64, fixedInterval float64, ctrl *adapt.Controller,
	scheme core.Scheme, ckptCost func(s *solver.Stationary) float64) *Outcome {
	t.Helper()
	a, b := jacobiSystem()
	s, m := newManagedJacobi(t, a, b, scheme)
	out, err := Run(Config{
		Stepper:           s,
		Manager:           m,
		X0:                make([]float64, a.Rows),
		TitSeconds:        1,
		IntervalSeconds:   fixedInterval,
		Controller:        ctrl,
		CheckpointSeconds: func(fti.Info) float64 { return ckptCost(s) },
		RecoverySeconds:   func(fti.Info) float64 { return 8 },
		FailureSchedule:   failureTrace(seed),
		MaxIterations:     500000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Fatalf("seed %d interval %g: did not converge", seed, fixedInterval)
	}
	return out
}

// meanSimSeconds averages a scenario's simulated wall-clock over the
// deterministic seed set.
func meanSimSeconds(t *testing.T, seeds []int64, run func(seed int64) *Outcome) float64 {
	t.Helper()
	var sum float64
	for _, seed := range seeds {
		sum += run(seed).SimSeconds
	}
	return sum / float64(len(seeds))
}

func sweepSeeds() []int64 { return []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12} }

// TestAdaptiveConfigValidation: the controller excludes a fixed
// interval, and its async flag must match the simulator's cost mode.
func TestAdaptiveConfigValidation(t *testing.T) {
	a, b := jacobiSystem()
	s, m := newManagedJacobi(t, a, b, core.Lossy)
	ctrl, err := adapt.New(conservativeControllerConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Config{Stepper: s, Manager: m, TitSeconds: 1, IntervalSeconds: 10, Controller: ctrl})
	if err == nil {
		t.Fatal("Controller + IntervalSeconds accepted")
	}
	asyncCtrl, err := adapt.New(adapt.Config{PriorMTTI: 1000, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Config{Stepper: s, Manager: m, TitSeconds: 1, Controller: asyncCtrl})
	if err == nil {
		t.Fatal("async controller accepted for a sync-cost run")
	}
}

// TestAdaptiveDeterministicTrajectory: same seed and failure trace ⇒
// bitwise identical outcome AND interval trajectory. This is the
// controller's determinism contract (pure state machine, virtual-time
// driven); CI re-runs it under -race.
func TestAdaptiveDeterministicTrajectory(t *testing.T) {
	run := func() *Outcome {
		ctrl, err := adapt.New(conservativeControllerConfig())
		if err != nil {
			t.Fatal(err)
		}
		return runJacobiSim(t, 42, 0, ctrl, core.Lossy, func(*solver.Stationary) float64 { return 6 })
	}
	x, y := run(), run()
	if x.SimSeconds != y.SimSeconds || x.IterationsExecuted != y.IterationsExecuted ||
		x.Failures != y.Failures || x.Checkpoints != y.Checkpoints ||
		x.FinalResidual != y.FinalResidual {
		t.Fatalf("same seed diverged:\n%+v\n%+v", x, y)
	}
	if len(x.IntervalPlans) == 0 {
		t.Fatal("adaptive run recorded no interval plans")
	}
	if !reflect.DeepEqual(x.IntervalPlans, y.IntervalPlans) {
		t.Fatalf("interval trajectories diverged:\n%+v\n%+v", x.IntervalPlans, y.IntervalPlans)
	}
}

// TestAdaptiveAsyncDeterministicTrajectory: the async-mode controller
// (fixed point over the overlapped stall) is deterministic too, and
// its plan reflects the overlapped cost, not the raw one.
func TestAdaptiveAsyncDeterministicTrajectory(t *testing.T) {
	run := func() *Outcome {
		a, b := jacobiSystem()
		s, m := newManagedJacobi(t, a, b, core.Lossy)
		ctrl, err := adapt.New(adapt.Config{PriorMTTI: 100, PriorWeight: 1, Async: true})
		if err != nil {
			t.Fatal(err)
		}
		out, err := Run(Config{
			Stepper:           s,
			Manager:           m,
			X0:                make([]float64, a.Rows),
			TitSeconds:        1,
			Controller:        ctrl,
			AsyncCheckpoint:   true,
			CaptureSeconds:    func(fti.Info) float64 { return 0.4 },
			CheckpointSeconds: func(fti.Info) float64 { return 6 },
			RecoverySeconds:   func(fti.Info) float64 { return 8 },
			FailureSchedule:   failureTrace(7),
			MaxIterations:     500000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	x, y := run(), run()
	if !reflect.DeepEqual(x.IntervalPlans, y.IntervalPlans) || len(x.IntervalPlans) == 0 {
		t.Fatalf("async trajectories diverged or empty:\n%+v\n%+v", x.IntervalPlans, y.IntervalPlans)
	}
	if x.SimSeconds != y.SimSeconds || x.FinalResidual != y.FinalResidual {
		t.Fatalf("async adaptive outcome diverged: %+v vs %+v", x, y)
	}
	// The async plan must exploit the overlap: once the planned
	// interval exceeds the 6 s background write, the solver-visible
	// cost per checkpoint is the 0.4 s capture stall alone.
	last := x.IntervalPlans[len(x.IntervalPlans)-1]
	if last.Cost > 1.0 {
		t.Fatalf("final plan cost %g, want the capture-dominated stall (≤ 1)", last.Cost)
	}
}

// TestAdaptivePinnedControllerMatchesFixedRun: a controller clamped to
// one interval reproduces the fixed-interval run bitwise — the
// controller changes only the checkpoint schedule, never the numerics,
// and for a given schedule the traces are identical.
func TestAdaptivePinnedControllerMatchesFixedRun(t *testing.T) {
	const tau = 25.0
	cost := func(*solver.Stationary) float64 { return 6 }
	fixed := runJacobiSim(t, 9, tau, nil, core.Lossy, cost)
	ctrl, err := adapt.New(adapt.Config{PriorMTTI: 1000, MinInterval: tau, MaxInterval: tau, InitialInterval: tau})
	if err != nil {
		t.Fatal(err)
	}
	pinned := runJacobiSim(t, 9, 0, ctrl, core.Lossy, cost)
	if fixed.SimSeconds != pinned.SimSeconds ||
		fixed.IterationsExecuted != pinned.IterationsExecuted ||
		fixed.ConvergenceIterations != pinned.ConvergenceIterations ||
		fixed.Checkpoints != pinned.Checkpoints ||
		fixed.Failures != pinned.Failures ||
		fixed.FinalResidual != pinned.FinalResidual {
		t.Fatalf("pinned controller diverged from the fixed run:\nfixed : %+v\npinned: %+v", fixed, pinned)
	}
}

// TestAdaptiveWithinFivePercentOfBestFixed is the acceptance sweep:
// over a deterministic seed set with shared failure traces, the
// adaptive controller — told nothing about C, R, or λ beyond a
// conservative prior — lands within 5% of the best fixed interval's
// mean simulated wall-clock. The scheme is lossless (exact-state
// recovery), the regime the Young/Daly interval model is derived for.
func TestAdaptiveWithinFivePercentOfBestFixed(t *testing.T) {
	seeds := sweepSeeds()
	cost := func(*solver.Stationary) float64 { return 6 }
	fixedIntervals := []float64{20, 30, 42, 55, 70, 90, 120}
	best := math.Inf(1)
	bestIv := 0.0
	for _, iv := range fixedIntervals {
		m := meanSimSeconds(t, seeds, func(seed int64) *Outcome {
			return runJacobiSim(t, seed, iv, nil, core.Lossless, cost)
		})
		if m < best {
			best, bestIv = m, iv
		}
	}
	adaptive := meanSimSeconds(t, seeds, func(seed int64) *Outcome {
		ctrl, err := adapt.New(conservativeControllerConfig())
		if err != nil {
			t.Fatal(err)
		}
		return runJacobiSim(t, seed, 0, ctrl, core.Lossless, cost)
	})
	t.Logf("best fixed interval %g: %.1f s mean; adaptive: %.1f s mean (%.2f%% off best)",
		bestIv, best, adaptive, 100*(adaptive/best-1))
	if adaptive > 1.05*best {
		t.Fatalf("adaptive mean %.1f s exceeds 1.05× best fixed %.1f s (interval %g)",
			adaptive, best, bestIv)
	}
}

// TestAdaptiveBeatsPaperDefaultUnderRatioDrift: when the compression
// ratio drifts mid-run, the offline interval computed from an initial
// probe checkpoint is stale for the rest of the run. The drift modeled
// here is the one this repo's own Theorem-3 machinery produces: the
// adaptive GMRES error bound tightens as the residual drops, so
// checkpoints compress worse — and cost more — as the solve converges
// (1.5 s early, 12 s once the residual passes 1e-2, ≈45% into the
// run). The paper-default fixed interval (Young's formula on the
// probe-time cost and the true MTTI) then checkpoints 3× too often at
// 8× the probed cost; the controller re-plans and wins.
func TestAdaptiveBeatsPaperDefaultUnderRatioDrift(t *testing.T) {
	seeds := sweepSeeds()
	const probeCost, lateCost = 1.5, 12.0
	driftCost := func(s *solver.Stationary) float64 {
		if s.ResidualNorm() > 1e-2 {
			return probeCost
		}
		return lateCost
	}
	// The paper's offline recipe: probe the checkpoint cost at run
	// start, plug it into Young's formula with the (true) MTTI.
	paperDefault := model.YoungInterval(adaptiveTestMTTI, probeCost)
	fixed := meanSimSeconds(t, seeds, func(seed int64) *Outcome {
		return runJacobiSim(t, seed, paperDefault, nil, core.Lossless, driftCost)
	})
	adaptive := meanSimSeconds(t, seeds, func(seed int64) *Outcome {
		ctrl, err := adapt.New(conservativeControllerConfig())
		if err != nil {
			t.Fatal(err)
		}
		return runJacobiSim(t, seed, 0, ctrl, core.Lossless, driftCost)
	})
	t.Logf("paper-default fixed τ=%.1f s: %.1f s mean; adaptive: %.1f s mean (%.2f%% win)",
		paperDefault, fixed, adaptive, 100*(1-adaptive/fixed))
	if adaptive >= fixed {
		t.Fatalf("adaptive mean %.1f s does not beat the stale fixed interval's %.1f s", adaptive, fixed)
	}
	// The trajectory must actually show the re-plan: the final interval
	// grows well past the early-phase plan as the cost estimate climbs.
	ctrl, err := adapt.New(conservativeControllerConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := runJacobiSim(t, 1, 0, ctrl, core.Lossless, driftCost)
	plans := out.IntervalPlans
	if len(plans) < 2 {
		t.Fatalf("expected several re-plans, got %d", len(plans))
	}
	first, last := plans[0], plans[len(plans)-1]
	if last.Interval <= first.Interval {
		t.Fatalf("interval did not grow with the cost drift: %.1f → %.1f", first.Interval, last.Interval)
	}
	if last.Cost <= first.Cost {
		t.Fatalf("cost estimate did not track the drift: %.2f → %.2f", first.Cost, last.Cost)
	}
}
