package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/obs"
)

// The registry and tracer are pure observers: an instrumented run must
// execute the bitwise-identical trajectory of an uninstrumented one.
func TestSimInstrumentationDeterministic(t *testing.T) {
	run := func(instrument bool) *Outcome {
		cfg, _ := tieredConfig(t, true, nil)
		cfg.Failures = failure.NewInjector(120, 5)
		cfg.RecordResiduals = true
		if instrument {
			cfg.Metrics = obs.New()
			cfg.Tracer = obs.NewTracer()
		}
		out, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return out
	}
	plain, inst := run(false), run(true)
	if plain.SimSeconds != inst.SimSeconds || plain.IterationsExecuted != inst.IterationsExecuted ||
		plain.Failures != inst.Failures || plain.Checkpoints != inst.Checkpoints ||
		plain.ABFTRecoveries != inst.ABFTRecoveries {
		t.Fatalf("instrumented run diverged:\n%+v\n%+v", plain, inst)
	}
	if len(plain.Residuals) != len(inst.Residuals) {
		t.Fatalf("residual traces differ in length: %d vs %d", len(plain.Residuals), len(inst.Residuals))
	}
	for i := range plain.Residuals {
		if math.Float64bits(plain.Residuals[i]) != math.Float64bits(inst.Residuals[i]) {
			t.Fatalf("residual %d not bitwise equal: %x vs %x", i,
				math.Float64bits(plain.Residuals[i]), math.Float64bits(inst.Residuals[i]))
		}
	}
}

// Satellite fix: every tier attempt in a sim report — rejected ones
// included — carries its virtual-time duration, priced by the same
// model the clock advanced by.
func TestSimReportsVirtualAttemptDurations(t *testing.T) {
	cfg, _ := tieredConfig(t, true, []float64{15})
	guard := cfg.Manager.ABFTGuard()
	steps := 0
	cfg.OnStep = func() {
		steps++
		if steps >= 12 {
			guard.CorruptRetained()
		}
	}
	out, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(out.RecoveryReports) == 0 {
		t.Fatal("no recovery reports")
	}
	rep := out.RecoveryReports[0]
	if len(rep.Attempts) < 2 {
		t.Fatalf("attempts %+v, want rejected abft then a checkpoint tier", rep.Attempts)
	}
	abftAtt := rep.Attempts[0]
	if abftAtt.Tier != core.TierABFT || abftAtt.Accepted {
		t.Fatalf("first attempt %+v, want rejected abft", abftAtt)
	}
	// The rejected attempt's duration is its virtual price: local
	// reconstruction iterations at TitSeconds each (zero iterations ran
	// here — verification failed before the local solve — so zero, not
	// the dropped/unset wall-clock time).
	if want := float64(abftAtt.Iterations) * cfg.TitSeconds; abftAtt.Seconds != want {
		t.Fatalf("rejected abft attempt Seconds = %g, want priced %g", abftAtt.Seconds, want)
	}
	var total float64
	for _, att := range rep.Attempts[1:] {
		if att.Tier != core.TierCheckpoint && att.Tier != core.TierPreviousCheckpoint {
			continue
		}
		if att.Seconds != 8 {
			t.Fatalf("checkpoint-tier attempt Seconds = %g, want the modeled restore cost 8", att.Seconds)
		}
	}
	for _, att := range rep.Attempts {
		total += att.Seconds
	}
	if total > out.RecoveryTime {
		t.Fatalf("attempt durations sum to %g, exceeding total recovery time %g", total, out.RecoveryTime)
	}
}

// The harness emits the real runs' span schema in virtual time and
// keeps its lifecycle counters consistent with the Outcome.
func TestSimEmitsVirtualTraceAndMetrics(t *testing.T) {
	cfg, _ := tieredConfig(t, true, []float64{15, 28})
	reg := obs.New()
	tr := obs.NewTracer()
	cfg.Metrics = reg
	cfg.Tracer = tr
	out, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	snap := reg.Snapshot()
	check := func(name string, labels []obs.Label, want float64) {
		t.Helper()
		md := snap.Get(name, labels...)
		if md == nil {
			t.Fatalf("metric %s%v missing from snapshot", name, labels)
		}
		if md.Value != want {
			t.Fatalf("%s%v = %g, want %g", name, labels, md.Value, want)
		}
	}
	check(obs.MSimFailuresTotal, nil, float64(out.Failures))
	check(obs.MSimCheckpointsTotal, nil, float64(out.Checkpoints))
	check(obs.MSimCheckpointAbortsTotal, nil, float64(out.AbortedCheckpoints))
	if out.ABFTRecoveries > 0 {
		check(obs.MSimRecoveriesTotal, []obs.Label{obs.L("tier", "abft")}, float64(out.ABFTRecoveries))
	}
	if md := snap.Get(obs.MSimElapsedSeconds); md == nil || md.Value != out.SimSeconds {
		t.Fatalf("sim_elapsed_seconds = %+v, want gauge %g", md, out.SimSeconds)
	}

	names := map[string]int{}
	for _, e := range tr.Events() {
		names[e.Name]++
		if e.Start < 0 || e.Start+e.Dur > out.SimSeconds+1e-9 {
			t.Fatalf("event %q spans [%g, %g] outside the run's virtual time [0, %g]",
				e.Name, e.Start, e.Start+e.Dur, out.SimSeconds)
		}
	}
	for _, want := range []string{obs.SpanCompute, obs.SpanCheckpoint, obs.SpanFailure,
		obs.SpanTierPrefix + "abft"} {
		if names[want] == 0 {
			t.Fatalf("trace has no %q events; got %v", want, names)
		}
	}
	if names[obs.SpanFailure] != out.Failures {
		t.Fatalf("%d failure instants, want %d", names[obs.SpanFailure], out.Failures)
	}
}
