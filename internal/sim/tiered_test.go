package sim

import (
	"math"
	"testing"

	"repro/internal/abft"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fti"
	"repro/internal/precond"
	"repro/internal/solver"
	"repro/internal/sz"
)

// tieredConfig builds one guarded-or-not CG sim config over the shared
// test system with a fixed failure schedule.
func tieredConfig(t *testing.T, guarded bool, schedule []float64) (Config, *solver.CG) {
	t.Helper()
	a, b, _ := testSystem()
	s := solver.NewCG(a, precond.NewJacobiFromMatrix(a), b, nil, solver.SeqSpace{},
		solver.Options{RTol: 1e-9})
	cfg := core.Config{
		Scheme:   core.Lossy,
		SZParams: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4},
	}
	if guarded {
		g, err := abft.NewGuard(a, b, s, abft.Config{Seed: 3})
		if err != nil {
			t.Fatalf("NewGuard: %v", err)
		}
		cfg.ABFT = g
	}
	m, err := core.NewManager(cfg, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return Config{
		Stepper:           s,
		Manager:           m,
		X0:                make([]float64, a.Rows),
		TitSeconds:        1,
		IntervalSeconds:   10,
		CheckpointSeconds: func(fti.Info) float64 { return 2 },
		RecoverySeconds:   func(fti.Info) float64 { return 8 },
		FailureSchedule:   schedule,
		MaxIterations:     100000,
	}, s
}

func TestTieredSimReducesPFSReadTraffic(t *testing.T) {
	schedule := []float64{15, 28}

	withCfg, _ := tieredConfig(t, true, schedule)
	with, err := Run(withCfg)
	if err != nil {
		t.Fatalf("guarded run: %v", err)
	}
	withoutCfg, _ := tieredConfig(t, false, schedule)
	without, err := Run(withoutCfg)
	if err != nil {
		t.Fatalf("unguarded run: %v", err)
	}

	if !with.Converged || !without.Converged {
		t.Fatalf("convergence: with=%v without=%v", with.Converged, without.Converged)
	}
	if with.Failures == 0 || without.Failures == 0 {
		t.Fatalf("failures: with=%d without=%d, want both runs to see failures", with.Failures, without.Failures)
	}
	if without.RecoveryReadBytes == 0 {
		t.Fatal("unguarded run read nothing back — the comparison needs checkpoint restarts to beat")
	}
	if with.ABFTRecoveries == 0 {
		t.Fatal("guarded run never recovered via the ABFT tier")
	}
	if without.ABFTRecoveries != 0 {
		t.Fatalf("unguarded run reports %d ABFT recoveries", without.ABFTRecoveries)
	}
	// The paper-level claim the tier exists for: ABFT recoveries read
	// nothing back from the PFS, so read traffic must strictly drop.
	if with.RecoveryReadBytes >= without.RecoveryReadBytes {
		t.Fatalf("PFS read traffic did not drop: %d bytes with ABFT vs %d without",
			with.RecoveryReadBytes, without.RecoveryReadBytes)
	}
	// Each completed recovery carries its report; interrupted chains
	// are reported too but marked, and don't count against the tiers.
	completed := 0
	for _, r := range with.RecoveryReports {
		if !r.Interrupted {
			completed++
		}
	}
	if completed != with.ABFTRecoveries+with.CheckpointRestarts+with.FreshRestarts {
		t.Fatalf("completed reports (%d) do not cover the recoveries (%d+%d+%d)", completed,
			with.ABFTRecoveries, with.CheckpointRestarts, with.FreshRestarts)
	}
	// Both runs converge to the solver's own tolerance; the ABFT path
	// must not have degraded the solution.
	if !(with.FinalResidual <= 10*without.FinalResidual) || math.IsNaN(with.FinalResidual) {
		t.Fatalf("guarded final residual %.3e vs unguarded %.3e", with.FinalResidual, without.FinalResidual)
	}
}

func TestTieredSimExhaustionFallsBackToCheckpoint(t *testing.T) {
	// Corrupt the guard's retained state after every retention refresh
	// from step 12 on: whenever the failure hits, the ABFT tier fails
	// verification and the chain must degrade to the checkpoint tier,
	// not panic.
	schedule := []float64{15}
	cfg, _ := tieredConfig(t, true, schedule)
	guard := cfg.Manager.ABFTGuard()
	steps := 0
	cfg.OnStep = func() {
		steps++
		if steps >= 12 {
			guard.CorruptRetained()
		}
	}
	out, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !out.Converged {
		t.Fatal("did not converge")
	}
	if out.CheckpointRestarts == 0 || out.ABFTRecoveries != 0 {
		t.Fatalf("tiers: abft=%d ckpt=%d fresh=%d, want the checkpoint fallback",
			out.ABFTRecoveries, out.CheckpointRestarts, out.FreshRestarts)
	}
	if out.RecoveryReadBytes == 0 {
		t.Fatal("checkpoint fallback recorded no PFS reads")
	}
	rep := out.RecoveryReports[0]
	if rep.Attempts[0].Tier != core.TierABFT || rep.Attempts[0].Accepted {
		t.Fatalf("first attempt %+v, want rejected abft", rep.Attempts[0])
	}
}

func TestTieredSimDeterministic(t *testing.T) {
	run := func() *Outcome {
		cfg, _ := tieredConfig(t, true, nil)
		cfg.FailureSchedule = nil
		cfg.Failures = failure.NewInjector(120, 5)
		out, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return out
	}
	a, b := run(), run()
	if a.SimSeconds != b.SimSeconds || a.IterationsExecuted != b.IterationsExecuted ||
		a.Failures != b.Failures || a.ABFTRecoveries != b.ABFTRecoveries ||
		a.RecoveryReadBytes != b.RecoveryReadBytes {
		t.Fatalf("seeded tiered runs diverge:\n%+v\n%+v", a, b)
	}
	if math.Float64bits(a.FinalResidual) != math.Float64bits(b.FinalResidual) {
		t.Fatalf("final residuals not bitwise equal: %x vs %x",
			math.Float64bits(a.FinalResidual), math.Float64bits(b.FinalResidual))
	}
}
