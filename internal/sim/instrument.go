package sim

import (
	"repro/internal/core"
	"repro/internal/obs"
)

// simObs is the harness's observability bundle. The simulator emits
// the same span schema real runs do — capture/encode+write/checkpoint
// spans on the solver and pipeline tracks, tier spans on the recovery
// track — but stamps every event with the virtual clock, so a
// simulated trace opens in chrome://tracing exactly like a wall-clock
// one. A nil bundle (the default) makes every hook a no-op, and the
// hooks never feed back into the simulation's control flow, so an
// instrumented run is bitwise identical to an uninstrumented one.
type simObs struct {
	failures *obs.Counter
	ckpts    *obs.Counter
	aborts   *obs.Counter
	tiers    [core.TierRestartZero + 1]*obs.Counter
	elapsed  *obs.Gauge
	tr       *obs.Tracer
}

func newSimObs(reg *obs.Registry, tr *obs.Tracer) *simObs {
	if reg == nil && tr == nil {
		return nil
	}
	ob := &simObs{
		failures: reg.Counter(obs.MSimFailuresTotal),
		ckpts:    reg.Counter(obs.MSimCheckpointsTotal),
		aborts:   reg.Counter(obs.MSimCheckpointAbortsTotal),
		elapsed:  reg.Gauge(obs.MSimElapsedSeconds),
		tr:       tr,
	}
	for t := core.TierABFT; t <= core.TierRestartZero; t++ {
		ob.tiers[t] = reg.With(obs.L("tier", t.String())).Counter(obs.MSimRecoveriesTotal)
	}
	return ob
}

// compute closes the current stretch of solver iterations as one
// coalesced span on the solver track.
func (o *simObs) compute(start, now float64) {
	if o == nil || now <= start {
		return
	}
	o.tr.Complete(obs.TrackSolver, obs.CatSolver, obs.SpanCompute, start, now-start, nil)
}

func (o *simObs) span(track int, cat, name string, start, dur float64, args map[string]float64) {
	if o == nil {
		return
	}
	o.tr.Complete(track, cat, name, start, dur, args)
}

func (o *simObs) failure(at float64) {
	if o == nil {
		return
	}
	o.failures.Inc()
	o.tr.InstantAt(obs.TrackSolver, obs.CatRecovery, obs.SpanFailure, at)
}

func (o *simObs) checkpoint() {
	if o == nil {
		return
	}
	o.ckpts.Inc()
}

func (o *simObs) abort() {
	if o == nil {
		return
	}
	o.aborts.Inc()
}

// recoveryTier counts one completed recovery under the tier that
// restored the solver (the legacy single-tier path reports the tier
// directly).
func (o *simObs) recoveryTier(t core.RecoveryTier) {
	if o == nil {
		return
	}
	if t >= 0 && int(t) < len(o.tiers) {
		o.tiers[t].Inc()
	}
}

// recovery records one recovery chain: a per-tier counter for
// completed chains, and one span per attempt on the recovery track,
// tiled from the chain's virtual start time. Spans of an interrupted
// chain are truncated at limit — the virtual time the new failure
// struck — and attempts that would start past it are dropped from the
// trace (they stay in the report).
func (o *simObs) recovery(rep *core.RecoveryReport, start, limit float64) {
	if o == nil {
		return
	}
	if !rep.Interrupted {
		o.recoveryTier(rep.Used)
	}
	cursor := start
	for _, att := range rep.Attempts {
		if cursor >= limit {
			break
		}
		dur := att.Seconds
		if cursor+dur > limit {
			dur = limit - cursor
		}
		args := map[string]float64{"accepted": 0}
		if att.Accepted {
			args["accepted"] = 1
		}
		if rep.Interrupted {
			args["interrupted"] = 1
		}
		if att.Iterations > 0 {
			args["iterations"] = float64(att.Iterations)
		}
		if att.ReadBytes > 0 {
			args["read_bytes"] = float64(att.ReadBytes)
		}
		o.tr.Complete(obs.TrackRecovery, obs.CatRecovery,
			obs.SpanTierPrefix+att.Tier.String(), cursor, dur, args)
		cursor += att.Seconds
	}
}

func (o *simObs) setElapsed(t float64) {
	if o == nil {
		return
	}
	o.elapsed.Set(t)
}
