package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/fti"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/sz"
)

// asyncSystem builds a fresh lossy-checkpointed Jacobi solver+manager
// pair (each run needs its own: the simulator mutates solver state).
func asyncSystem(t *testing.T) (*solver.Stationary, *core.Manager, int) {
	t.Helper()
	a := sparse.Poisson2D(8)
	xe := sparse.SmoothField(a.Rows, 31)
	b := sparse.RHSForSolution(a, xe)
	s, err := solver.NewStationary(solver.KindJacobi, a, b, nil, 0, solver.Options{RTol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewManager(core.Config{
		Scheme:   core.Lossy,
		SZParams: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4},
	}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	return s, m, a.Rows
}

func asyncCfg(s *solver.Stationary, m *core.Manager, n int, async bool, capSec, ckptSec float64, schedule []float64) Config {
	return Config{
		Stepper:           s,
		Manager:           m,
		X0:                make([]float64, n),
		TitSeconds:        1,
		IntervalSeconds:   25,
		CheckpointSeconds: func(fti.Info) float64 { return ckptSec },
		CaptureSeconds:    func(fti.Info) float64 { return capSec },
		RecoverySeconds:   func(fti.Info) float64 { return ckptSec },
		AsyncCheckpoint:   async,
		FailureSchedule:   schedule,
		MaxIterations:     200000,
		RecordResiduals:   true,
	}
}

// TestAsyncCostModeRejectsAsyncManager: the sim models the overlap in
// virtual time and needs the full (non-provisional) checkpoint Info,
// so pairing it with a real async Manager is a configuration error.
func TestAsyncCostModeRejectsAsyncManager(t *testing.T) {
	a := sparse.Poisson2D(8)
	b := sparse.RHSForSolution(a, sparse.SmoothField(a.Rows, 31))
	s, err := solver.NewStationary(solver.KindJacobi, a, b, nil, 0, solver.Options{RTol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewManager(core.Config{
		Scheme:   core.Lossy,
		Async:    true,
		SZParams: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4},
	}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(asyncCfg(s, m, a.Rows, true, 0.5, 10, nil)); err == nil {
		t.Fatal("sim must reject AsyncCheckpoint with an async Manager")
	}
	// The converse misconfiguration — async Manager, sync cost mode —
	// would silently price every checkpoint off a provisional Info.
	if _, err := Run(asyncCfg(s, m, a.Rows, false, 0.5, 10, nil)); err == nil {
		t.Fatal("sim must reject an async Manager in sync cost mode too")
	}
}

// TestAsyncCostModeFailureFreeIdenticalNumericsCheaperClock: with no
// failures the async mode runs the identical iteration sequence
// (bitwise-identical residual trace) while charging only the capture
// stall — the solver-visible checkpoint time collapses.
func TestAsyncCostModeFailureFreeIdenticalNumericsCheaperClock(t *testing.T) {
	s1, m1, n := asyncSystem(t)
	syncOut, err := Run(asyncCfg(s1, m1, n, false, 0.5, 10, nil))
	if err != nil {
		t.Fatal(err)
	}
	s2, m2, _ := asyncSystem(t)
	asyncOut, err := Run(asyncCfg(s2, m2, n, true, 0.5, 10, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !syncOut.Converged || !asyncOut.Converged {
		t.Fatal("both modes must converge")
	}
	if len(syncOut.Residuals) != len(asyncOut.Residuals) {
		t.Fatalf("iteration counts differ: %d vs %d", len(syncOut.Residuals), len(asyncOut.Residuals))
	}
	for i := range syncOut.Residuals {
		if math.Float64bits(syncOut.Residuals[i]) != math.Float64bits(asyncOut.Residuals[i]) {
			t.Fatalf("residual traces diverge at iteration %d", i)
		}
	}
	if asyncOut.Checkpoints != syncOut.Checkpoints {
		t.Fatalf("checkpoint counts differ: async %d, sync %d", asyncOut.Checkpoints, syncOut.Checkpoints)
	}
	// Background encode+write (10s) fits inside the 25s interval, so
	// async pays 0.5s capture per checkpoint instead of 10s.
	wantStall := 0.5 * float64(asyncOut.Checkpoints)
	if math.Abs(asyncOut.CheckpointTime-wantStall) > 1e-9 {
		t.Fatalf("async checkpoint time %g, want capture-only %g", asyncOut.CheckpointTime, wantStall)
	}
	if asyncOut.BackpressureTime != 0 {
		t.Fatalf("no backpressure expected, got %g", asyncOut.BackpressureTime)
	}
	if asyncOut.SimSeconds >= syncOut.SimSeconds {
		t.Fatalf("async wall clock %g not below sync %g", asyncOut.SimSeconds, syncOut.SimSeconds)
	}
}

// TestAsyncCostModeBackpressure: a background pipeline slower than the
// checkpoint interval stalls the next capture — the charged wait is
// tbg − interval per steady-state checkpoint.
func TestAsyncCostModeBackpressure(t *testing.T) {
	s, m, n := asyncSystem(t)
	// interval 25 (plus 1.0 capture), background 40 → every checkpoint
	// after the first waits ≈ 40 − 26 = 14s.
	out, err := Run(asyncCfg(s, m, n, true, 1.0, 40, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Fatal("did not converge")
	}
	if out.Checkpoints < 3 {
		t.Fatalf("want several checkpoints, got %d", out.Checkpoints)
	}
	if out.BackpressureTime <= 0 {
		t.Fatal("backpressure must be charged when tbg > interval")
	}
	perCkpt := out.BackpressureTime / float64(out.Checkpoints-1)
	if math.Abs(perCkpt-14) > 1 {
		t.Fatalf("steady-state backpressure %g s/checkpoint, want ≈14", perCkpt)
	}
}

// TestAsyncCostModeFailureDuringInFlightWrite: a failure before the
// background write commits aborts that checkpoint; recovery falls back
// (here: to scratch, as it was the first checkpoint) and the run still
// converges.
func TestAsyncCostModeFailureDuringInFlightWrite(t *testing.T) {
	s, m, n := asyncSystem(t)
	// First checkpoint captured at t=25 (0.5s capture), background
	// write commits at 25.5+20=45.5. Failure at t=30 strikes mid-write.
	out, err := Run(asyncCfg(s, m, n, true, 0.5, 20, []float64{30}))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Fatal("did not converge after the in-flight abort")
	}
	if out.Failures != 1 {
		t.Fatalf("failures = %d", out.Failures)
	}
	if out.AbortedCheckpoints != 1 {
		t.Fatalf("the in-flight checkpoint must be aborted, got %d aborts", out.AbortedCheckpoints)
	}
}

// TestAsyncCostModeFailureAfterCommitRecovers: a failure after the
// background write committed recovers from that checkpoint, exactly as
// in sync mode.
func TestAsyncCostModeFailureAfterCommitRecovers(t *testing.T) {
	s, m, n := asyncSystem(t)
	// Commit at 25.5+5 = 30.5; failure at 40 > 30.5.
	out, err := Run(asyncCfg(s, m, n, true, 0.5, 5, []float64{40}))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Fatal("did not converge")
	}
	if out.AbortedCheckpoints != 0 {
		t.Fatalf("committed checkpoint wrongly aborted (%d aborts)", out.AbortedCheckpoints)
	}
	if out.Failures != 1 || out.RecoveryTime <= 0 {
		t.Fatalf("failures=%d recovery=%g", out.Failures, out.RecoveryTime)
	}
}
