package sz

import (
	"math"
	"testing"
)

func rangeTestData(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 5 + math.Sin(float64(i)/300)*math.Cos(float64(i)/47)
	}
	return x
}

func TestBlockRangesCoverStream(t *testing.T) {
	x := rangeTestData(200_000)
	for _, mode := range []Mode{Abs, PWRel} {
		data, err := Compress(x, Params{Mode: mode, ErrorBound: 1e-6})
		if err != nil {
			t.Fatal(err)
		}
		ranges, ok := BlockRanges(data)
		if !ok {
			t.Fatalf("mode %v: expected SZG2 stream", mode)
		}
		wantBlocks := (len(x) + defaultBlockElems - 1) / defaultBlockElems
		if len(ranges) != wantBlocks {
			t.Fatalf("mode %v: %d ranges for %d blocks", mode, len(ranges), wantBlocks)
		}
		// Contiguous, in-bounds, ending at the stream end.
		for i, r := range ranges {
			if r.End <= r.Start {
				t.Fatalf("empty range %d: %+v", i, r)
			}
			if i > 0 && r.Start != ranges[i-1].End {
				t.Fatalf("ranges %d..%d not contiguous", i-1, i)
			}
		}
		if ranges[0].Start <= len(magicBlocked) {
			t.Fatal("first block overlaps the container magic")
		}
		if ranges[len(ranges)-1].End != len(data) {
			t.Fatal("last range does not end at the stream end")
		}
	}
}

func TestBlockRangesRejectNonBlocked(t *testing.T) {
	small := rangeTestData(100) // fits one block: legacy SZG1
	data, err := Compress(small, Params{Mode: Abs, ErrorBound: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := BlockRanges(data); ok {
		t.Fatal("legacy stream reported block ranges")
	}
	if _, ok := BlockRanges([]byte("not a stream")); ok {
		t.Fatal("foreign bytes reported block ranges")
	}
	// A truncated SZG2 header must be rejected, not panic.
	big, err := Compress(rangeTestData(100_000), Params{Mode: Abs, ErrorBound: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := BlockRanges(big[:6]); ok {
		t.Fatal("truncated header reported block ranges")
	}
}

func TestSplitBlocksAlignsAndCovers(t *testing.T) {
	x := rangeTestData(300_000)
	data, err := Compress(x, Params{Mode: PWRel, ErrorBound: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	blocks, _ := BlockRanges(data)
	boundary := map[int]bool{}
	for _, b := range blocks {
		boundary[b.End] = true
	}
	for _, parts := range [][]Range{
		SplitBlocks(data, 1),
		SplitBlocks(data, 3),
		SplitBlocks(data, 4),
		SplitBlocks(data, 1000), // clamps to the block count
	} {
		prev := 0
		for i, p := range parts {
			if p.Start != prev || p.End <= p.Start {
				t.Fatalf("parts not contiguous/non-empty: %v", parts)
			}
			if i < len(parts)-1 && !boundary[p.End] {
				t.Fatalf("cut at %d is not a block boundary", p.End)
			}
			prev = p.End
		}
		if prev != len(data) {
			t.Fatalf("parts cover %d of %d bytes", prev, len(data))
		}
	}
	if got := len(SplitBlocks(data, 1000)); got != len(blocks) {
		t.Fatalf("maxParts beyond block count yielded %d parts, want %d", got, len(blocks))
	}
	// Concatenating the parts must reproduce the stream, and the
	// stream must still decompress within the bound.
	parts := SplitBlocks(data, 4)
	var joined []byte
	for _, p := range parts {
		joined = append(joined, data[p.Start:p.End]...)
	}
	out, err := Decompress(joined)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(out[i]-x[i]) > 1e-5*math.Abs(x[i]) {
			t.Fatalf("value %d outside bound after split/join", i)
		}
	}
}

func TestSplitBlocksLegacySingleSpan(t *testing.T) {
	small := rangeTestData(64)
	data, err := Compress(small, Params{Mode: Abs, ErrorBound: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	parts := SplitBlocks(data, 8)
	if len(parts) != 1 || parts[0] != (Range{0, len(data)}) {
		t.Fatalf("legacy stream split into %v", parts)
	}
	if parts := SplitBlocks(data, 0); len(parts) != 1 {
		t.Fatalf("maxParts 0: %v", parts)
	}
}
