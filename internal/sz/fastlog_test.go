package sz

import (
	"math"
	"math/rand"
	"testing"
)

// TestFastLogAccuracy sweeps the full normal exponent range and a
// dense band of near-1 values, asserting fastLog stays within
// fastLogErr of math.Log everywhere — the property the tightened
// encode bound in appendLogTransform relies on.
func TestFastLogAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	check := func(x float64) {
		t.Helper()
		got := fastLog(math.Float64bits(x))
		want := math.Log(x)
		if d := math.Abs(got - want); d > fastLogErr {
			t.Fatalf("fastLog(%g) = %v, math.Log = %v, |diff| = %g > %g", x, got, want, d, fastLogErr)
		}
	}
	// Every binade from the smallest normal to the largest, several
	// mantissas each, hitting all 128 table rows across the sweep.
	for e := -1022; e <= 1023; e++ {
		scale := math.Ldexp(1, e)
		if math.IsInf(scale, 0) {
			continue
		}
		for j := 0; j < 8; j++ {
			m := 1 + rng.Float64()
			if m >= 2 {
				m = 1.9999999
			}
			x := m * scale
			if x < tinyThreshold || math.IsInf(x, 0) {
				continue
			}
			check(x)
		}
	}
	// Near 1, where ln catastrophically cancels: absolute accuracy must
	// survive the k and ln(c) terms cancelling.
	for j := 0; j < 20000; j++ {
		check(1 + (rng.Float64()-0.5)*1e-3)
	}
	// Table-row edges.
	for i := 0; i < 128; i++ {
		check(1 + float64(i)/128)
		check((1 + float64(i)/128) / 2)
	}
	check(tinyThreshold)
	check(math.MaxFloat64)
}

// TestFastLogBoundCompensation verifies the PWRel encoder's bound
// arithmetic: quantizing fastLog values under ln(1+eb) − fastLogErr
// keeps the decoded values within eb·|x| even for eb small enough that
// the tightening matters.
func TestFastLogBoundCompensation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, eb := range []float64{1e-2, 1e-4, 1e-6, 1e-9} {
		x := make([]float64, 20000)
		for i := range x {
			// Wide dynamic range, including large-|ln| magnitudes where
			// fastLog's absolute error peaks.
			x[i] = math.Ldexp(1+rng.Float64(), rng.Intn(1200)-600)
			if i%3 == 0 {
				x[i] = -x[i]
			}
		}
		enc, err := Compress(x, Params{Mode: PWRel, ErrorBound: eb})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decompress(enc)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if d := math.Abs(dec[i] - x[i]); d > eb*math.Abs(x[i])*(1+1e-10) {
				t.Fatalf("eb=%g: |dec-x| = %g at %d exceeds %g (x=%g)", eb, d, i, eb*math.Abs(x[i]), x[i])
			}
		}
	}
}
