package sz

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func roundTrip(t *testing.T, x []float64, p Params) []float64 {
	t.Helper()
	comp, err := Compress(x, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(x) {
		t.Fatalf("decompressed %d values, want %d", len(got), len(x))
	}
	return got
}

func assertAbsBound(t *testing.T, x, got []float64, eb float64) {
	t.Helper()
	for i := range x {
		if d := math.Abs(x[i] - got[i]); d > eb*(1+1e-12) {
			t.Fatalf("index %d: |%g − %g| = %g > eb %g", i, x[i], got[i], d, eb)
		}
	}
}

func TestAbsBoundSmoothData(t *testing.T) {
	x := sparse.SmoothField(10000, 1)
	const eb = 1e-4
	comp, err := Compress(x, Params{Mode: Abs, ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	assertAbsBound(t, x, got, eb)
	if r := Ratio(len(x), comp); r < 8 {
		t.Fatalf("compression ratio %.1f too low for smooth data (paper reports 20–60×)", r)
	}
}

func TestAbsBoundTightens(t *testing.T) {
	x := sparse.SmoothField(20000, 2)
	var prev float64 = math.Inf(1)
	for _, eb := range []float64{1e-2, 1e-4, 1e-6, 1e-8} {
		comp, err := Compress(x, Params{Mode: Abs, ErrorBound: eb})
		if err != nil {
			t.Fatal(err)
		}
		r := Ratio(len(x), comp)
		if r > prev*1.05 {
			t.Fatalf("ratio should not grow as the bound tightens: eb=%g gives %.1f after %.1f",
				eb, r, prev)
		}
		prev = r
		got, _ := Decompress(comp)
		assertAbsBound(t, x, got, eb)
	}
}

func TestAbsRandomDataStillBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 5000)
	for i := range x {
		x[i] = rng.NormFloat64() * 1e6
	}
	const eb = 1e-3
	got := roundTrip(t, x, Params{Mode: Abs, ErrorBound: eb})
	assertAbsBound(t, x, got, eb)
}

func TestRelRangeBound(t *testing.T) {
	x := sparse.SmoothField(8000, 4)
	lo, hi := valueRange(x)
	const eb = 1e-4
	got := roundTrip(t, x, Params{Mode: RelRange, ErrorBound: eb})
	assertAbsBound(t, x, got, eb*(hi-lo))
}

func TestRelRangeConstantVector(t *testing.T) {
	x := make([]float64, 1000)
	for i := range x {
		x[i] = 3.25
	}
	comp, err := Compress(x, Params{Mode: RelRange, ErrorBound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != 3.25 {
			t.Fatalf("constant vector must reconstruct exactly, got %g", got[i])
		}
	}
	if len(comp) > 64 {
		t.Fatalf("constant vector should compress to a header, got %d bytes", len(comp))
	}
}

func TestPWRelBound(t *testing.T) {
	// The paper's bound: |x_i − x′_i| ≤ eb·|x_i| for every i,
	// including values spanning many orders of magnitude.
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, 6000)
	for i := range x {
		mag := math.Pow(10, float64(rng.Intn(12))-6)
		x[i] = (1 + rng.Float64()) * mag
		if rng.Intn(2) == 0 {
			x[i] = -x[i]
		}
	}
	const eb = 1e-4
	got := roundTrip(t, x, Params{Mode: PWRel, ErrorBound: eb})
	for i := range x {
		if d := math.Abs(x[i] - got[i]); d > eb*math.Abs(x[i])*(1+1e-10) {
			t.Fatalf("index %d: rel err %g > %g", i, d/math.Abs(x[i]), eb)
		}
	}
}

func TestPWRelZerosExact(t *testing.T) {
	x := []float64{0, 1, 0, -2, 0, 3e-300, 0}
	got := roundTrip(t, x, Params{Mode: PWRel, ErrorBound: 1e-3})
	for i, v := range x {
		if v == 0 && got[i] != 0 {
			t.Fatalf("zero at %d reconstructed as %g", i, got[i])
		}
	}
}

func TestPWRelPreservesSigns(t *testing.T) {
	x := sparse.SmoothField(5000, 6) // oscillates through negative values
	got := roundTrip(t, x, Params{Mode: PWRel, ErrorBound: 1e-4})
	for i := range x {
		if x[i] != 0 && math.Signbit(x[i]) != math.Signbit(got[i]) {
			t.Fatalf("sign flipped at %d: %g -> %g", i, x[i], got[i])
		}
	}
}

func TestPWRelSmoothRatio(t *testing.T) {
	// Solver state at the paper's eb = 1e-4 should compress at least
	// an order of magnitude (paper: 20–60×; our 1D pipeline on a
	// synthetic smooth field is in the same decade).
	x := sparse.SmoothField(50000, 7)
	for i := range x {
		x[i] += 2.5 // keep away from zero so the bound is meaningful
	}
	comp, err := Compress(x, Params{Mode: PWRel, ErrorBound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if r := Ratio(len(x), comp); r < 10 {
		t.Fatalf("PWRel ratio %.1f too low for smooth data", r)
	}
}

func TestPredictorSelection(t *testing.T) {
	// On a quadratic signal the order-1 predictor leaves a linearly
	// growing difference (many distinct quantization bins) while the
	// order-2 predictor leaves a constant difference (one bin), so
	// auto must choose linear and compress better.
	n := 20000
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) * 0.001
		x[i] = ti * ti
	}
	lin, err := Compress(x, Params{Mode: Abs, ErrorBound: 1e-6, Predictor: PredictorLinear})
	if err != nil {
		t.Fatal(err)
	}
	lor, err := Compress(x, Params{Mode: Abs, ErrorBound: 1e-6, Predictor: PredictorLorenzo})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := Compress(x, Params{Mode: Abs, ErrorBound: 1e-6, Predictor: PredictorAuto})
	if err != nil {
		t.Fatal(err)
	}
	if len(lin) >= len(lor) {
		t.Fatalf("linear predictor should beat Lorenzo on a ramp: %d vs %d", len(lin), len(lor))
	}
	if len(auto) > len(lin)+16 {
		t.Fatalf("auto (%d bytes) failed to select the linear predictor (%d bytes)", len(auto), len(lin))
	}
}

func TestEmptyInput(t *testing.T) {
	got := roundTrip(t, nil, Params{Mode: Abs, ErrorBound: 1e-4})
	if len(got) != 0 {
		t.Fatalf("empty round trip returned %d values", len(got))
	}
}

func TestSingleValue(t *testing.T) {
	got := roundTrip(t, []float64{42.5}, Params{Mode: Abs, ErrorBound: 1e-4})
	if math.Abs(got[0]-42.5) > 1e-4 {
		t.Fatalf("got %g", got[0])
	}
}

func TestInvalidParams(t *testing.T) {
	x := []float64{1, 2}
	if _, err := Compress(x, Params{Mode: Abs, ErrorBound: 0}); err == nil {
		t.Fatal("expected error for zero bound")
	}
	if _, err := Compress(x, Params{Mode: Abs, ErrorBound: -1}); err == nil {
		t.Fatal("expected error for negative bound")
	}
	if _, err := Compress(x, Params{Mode: PWRel, ErrorBound: 1.5}); err == nil {
		t.Fatal("expected error for PWRel bound ≥ 1")
	}
	if _, err := Compress(x, Params{Mode: Abs, ErrorBound: 1e-4, Intervals: 2}); err == nil {
		t.Fatal("expected error for too few intervals")
	}
	if _, err := Compress([]float64{math.NaN()}, Params{Mode: Abs, ErrorBound: 1e-4}); err == nil {
		t.Fatal("expected error for NaN input")
	}
	if _, err := Compress([]float64{math.Inf(1)}, Params{Mode: Abs, ErrorBound: 1e-4}); err == nil {
		t.Fatal("expected error for Inf input")
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	if _, err := Decompress([]byte("nonsense")); err == nil {
		t.Fatal("expected error for bad magic")
	}
	comp, err := Compress(sparse.SmoothField(100, 8), Params{Mode: Abs, ErrorBound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(comp[:len(comp)/2]); err == nil {
		t.Fatal("expected error for truncated stream")
	}
}

func TestIntervalsAffectUnpredictables(t *testing.T) {
	// With very few intervals, rough data overflows the quantization
	// range and falls back to stored values — output stays correct.
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, 2000)
	for i := range x {
		x[i] = rng.NormFloat64() * 100
	}
	const eb = 1e-5
	got := roundTrip(t, x, Params{Mode: Abs, ErrorBound: eb, Intervals: 8})
	assertAbsBound(t, x, got, eb)
}

// Property: the absolute bound holds for arbitrary finite data and
// bounds across both core modes.
func TestAbsBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3000)
		x := make([]float64, n)
		smooth := rng.Intn(2) == 0
		for i := range x {
			if smooth {
				x[i] = math.Sin(float64(i)/50) * 10
			} else {
				x[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(6)))
			}
		}
		eb := math.Pow(10, -1-float64(rng.Intn(8)))
		comp, err := Compress(x, Params{Mode: Abs, ErrorBound: eb})
		if err != nil {
			return false
		}
		got, err := Decompress(comp)
		if err != nil || len(got) != n {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-got[i]) > eb*(1+1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: pointwise-relative bound holds for arbitrary nonzero data.
func TestPWRelBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(2000)
		x := make([]float64, n)
		for i := range x {
			x[i] = (rng.Float64() + 0.1) * math.Pow(10, float64(rng.Intn(10))-5)
			if rng.Intn(2) == 0 {
				x[i] = -x[i]
			}
		}
		eb := math.Pow(10, -2-float64(rng.Intn(5)))
		comp, err := Compress(x, Params{Mode: PWRel, ErrorBound: eb})
		if err != nil {
			return false
		}
		got, err := Decompress(comp)
		if err != nil || len(got) != n {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-got[i]) > eb*math.Abs(x[i])*(1+1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
