package sz

import (
	"encoding/binary"
	"fmt"

	"repro/internal/parallel"
)

// The SZG2 blocked container:
//
//	"SZG2" | mode byte | uvarint n | uvarint blockElems | uvarint nBlocks
//	       | nBlocks × uvarint blockByteLen | concatenated block payloads
//
// Block i covers elements [i·blockElems, min(n, (i+1)·blockElems)).
// Each block payload is a kind byte followed by the same kind-specific
// encoding the legacy SZG1 stream uses, so every block is a fully
// independent compression unit: its own predictor state (chosen per
// block under PredictorAuto), its own Huffman table, its own
// unpredictable-value list. Blocks therefore compress and decompress
// concurrently with bit-exact determinism — the output bytes do not
// depend on the schedule, only on the input and parameters.
//
// Error-bound semantics match the legacy format exactly. Abs and PWRel
// bounds are pointwise, so per-block encoding preserves them verbatim.
// The RelRange bound is defined against the *global* value range, so
// the range is computed once over the whole vector and the derived
// absolute bound is shared by every block — a block-local range would
// silently tighten or loosen the guarantee.

// compressBlocked emits the SZG2 container, compressing blocks
// concurrently across the parallel worker pool.
func compressBlocked(x []float64, p Params) ([]byte, error) {
	n := len(x)
	blockElems := p.BlockSize
	nBlocks := (n + blockElems - 1) / blockElems

	// Mode-specific preparation that needs a global view.
	ebAbs := p.ErrorBound
	if p.Mode == RelRange {
		lo, hi := valueRange(x)
		ebAbs = p.ErrorBound * (hi - lo)
		if ebAbs == 0 {
			// Globally constant data collapses to the legacy constant
			// stream regardless of size.
			out := []byte(magic)
			out = append(out, byte(p.Mode))
			return appendConstant(out, x), nil
		}
	}

	blocks := make([][]byte, nBlocks)
	errs := make([]error, nBlocks)
	parallel.For(nBlocks, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			start := b * blockElems
			end := start + blockElems
			if end > n {
				end = n
			}
			chunk := x[start:end]
			buf := parallel.GetBytes(len(chunk) + 64)
			var err error
			switch p.Mode {
			case Abs, RelRange:
				buf = append(buf, kindCore)
				buf, err = appendCore(buf, chunk, ebAbs, p.Predictor, p.Intervals)
			case PWRel:
				buf = append(buf, kindLogTransform)
				buf, err = appendLogTransform(buf, chunk, p)
			default:
				err = fmt.Errorf("sz: unknown mode %d", p.Mode)
			}
			blocks[b], errs[b] = buf, err
		}
	})
	for b, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sz: block %d: %w", b, err)
		}
	}

	total := 0
	for _, blk := range blocks {
		total += len(blk)
	}
	out := make([]byte, 0, total+16+binary.MaxVarintLen64*(nBlocks+3))
	out = append(out, magicBlocked...)
	out = append(out, byte(p.Mode))
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		k := binary.PutUvarint(scratch[:], v)
		out = append(out, scratch[:k]...)
	}
	putUvarint(uint64(n))
	putUvarint(uint64(blockElems))
	putUvarint(uint64(nBlocks))
	for _, blk := range blocks {
		putUvarint(uint64(len(blk)))
	}
	for b, blk := range blocks {
		out = append(out, blk...)
		parallel.PutBytes(blk)
		blocks[b] = nil
	}
	return out, nil
}

// blockedLayout describes where each block of an SZG2 stream lives:
// offsets[b] is the absolute byte offset of block b's payload within
// the stream, with offsets[nBlocks] == len(stream).
type blockedLayout struct {
	n, blockElems int
	offsets       []int
}

// parseBlockedLayout validates an SZG2 container header and returns
// the block layout. It is the single header parser shared by the
// decompressor, the shard-alignment API, and the streaming decoder, so
// the allocation guards against crafted headers apply uniformly. data
// must contain the complete header (through the block-length table)
// but may be truncated before the block payloads; streamLen is the
// byte length of the full stream, against which the guards and the
// block spans are validated (in-memory callers pass len(data)).
func parseBlockedLayout(data []byte, streamLen int) (blockedLayout, error) {
	var lay blockedLayout
	off := len(magicBlocked) + 1 // skip magic and the informational mode byte
	if len(data) < off {
		return lay, fmt.Errorf("sz: truncated blocked header")
	}
	getUvarint := func() (uint64, error) {
		v, k := binary.Uvarint(data[off:])
		if k <= 0 {
			return 0, fmt.Errorf("sz: truncated blocked header")
		}
		off += k
		return v, nil
	}
	n64, err := getUvarint()
	if err != nil {
		return lay, err
	}
	blockElems64, err := getUvarint()
	if err != nil {
		return lay, err
	}
	nBlocks64, err := getUvarint()
	if err != nil {
		return lay, err
	}
	n := int(n64)
	blockElems := int(blockElems64)
	nBlocks := int(nBlocks64)
	if n < 0 || blockElems < 1 || nBlocks < 1 {
		return lay, fmt.Errorf("sz: invalid blocked header (n=%d blockElems=%d nBlocks=%d)",
			n, blockElems, nBlocks)
	}
	if want := (n + blockElems - 1) / blockElems; want != nBlocks {
		return lay, fmt.Errorf("sz: blocked header inconsistent: %d elements in %d-element blocks needs %d blocks, header says %d",
			n, blockElems, want, nBlocks)
	}
	// Allocation guards against crafted headers: every block needs at
	// least one length byte, and both block kinds spend at least one
	// bit (core) or one bitmap bit (log transform) per element, so a
	// genuine stream can never claim more blocks than remaining bytes
	// or more elements than 8× the remaining bytes.
	if nBlocks > streamLen-off {
		return lay, fmt.Errorf("sz: %d blocks exceed %d remaining bytes", nBlocks, streamLen-off)
	}
	if n > 8*(streamLen-off) {
		return lay, fmt.Errorf("sz: %d elements exceed %d payload bytes", n, streamLen-off)
	}
	lens := make([]int, nBlocks)
	for b := range lens {
		l, err := getUvarint()
		if err != nil {
			return lay, err
		}
		if l > uint64(streamLen-off) {
			return lay, fmt.Errorf("sz: block %d length %d exceeds payload", b, l)
		}
		lens[b] = int(l)
	}
	offsets := make([]int, nBlocks+1)
	offsets[0] = off
	for b, l := range lens {
		offsets[b+1] = offsets[b] + l
	}
	if offsets[nBlocks] != streamLen {
		return lay, fmt.Errorf("sz: blocked payload is %d bytes, blocks cover %d",
			streamLen-off, offsets[nBlocks]-off)
	}
	return blockedLayout{n: n, blockElems: blockElems, offsets: offsets}, nil
}

// decompressBlocked reverses compressBlocked, decoding blocks
// concurrently straight into their slices of the output vector.
func decompressBlocked(data []byte) ([]float64, error) {
	lay, err := parseBlockedLayout(data, len(data))
	if err != nil {
		return nil, err
	}
	out := make([]float64, lay.n)
	if err := decodeBlocksInto(data, lay, out); err != nil {
		return nil, err
	}
	return out, nil
}

// decompressBlockedInto is decompressBlocked into a caller-provided
// output vector, whose length must match the stream's element count.
func decompressBlockedInto(data []byte, dst []float64) error {
	lay, err := parseBlockedLayout(data, len(data))
	if err != nil {
		return err
	}
	if len(dst) != lay.n {
		return fmt.Errorf("sz: stream holds %d values, dst has %d", lay.n, len(dst))
	}
	return decodeBlocksInto(data, lay, dst)
}

// decodeBlocksInto decodes every block of a parsed SZG2 stream into
// its slice of out, concurrently across the worker pool.
func decodeBlocksInto(data []byte, lay blockedLayout, out []float64) error {
	n, blockElems, offsets := lay.n, lay.blockElems, lay.offsets
	nBlocks := len(offsets) - 1
	errs := make([]error, nBlocks)
	parallel.For(nBlocks, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			start := b * blockElems
			end := start + blockElems
			if end > n {
				end = n
			}
			errs[b] = decodeBlockInto(out[start:end], data[offsets[b]:offsets[b+1]])
		}
	})
	for b, err := range errs {
		if err != nil {
			return fmt.Errorf("sz: block %d: %w", b, err)
		}
	}
	return nil
}

// decodeBlockInto decodes one block payload (kind byte + payload) into
// dst, which must have exactly the block's element count. Only core
// and log-transform blocks exist inside SZG2 containers — globally
// constant data collapses to the legacy constant stream before
// blocking, and keeping kindConstant out of blocks is what makes the
// n ≤ 8·payload allocation guard in decompressBlocked sound.
func decodeBlockInto(dst []float64, blk []byte) error {
	if len(blk) < 1 {
		return fmt.Errorf("empty block")
	}
	kind, payload := blk[0], blk[1:]
	switch kind {
	case kindCore:
		_, err := decodeCoreInto(payload, dst)
		return err
	case kindLogTransform:
		_, err := decodeLogTransformInto(payload, dst)
		return err
	}
	return fmt.Errorf("unknown block payload kind %d", kind)
}

// Range is a half-open [Start, End) byte span within an encoded
// stream.
type Range struct {
	Start, End int
}

// BlockLayout describes the block structure of an SZG2 container for
// streaming decode: the total element count, the elements per full
// block (the last block may be shorter), and the absolute byte span of
// every block payload within the stream. A consumer holding only a
// contiguous piece of the stream — a checkpoint shard — can decode
// exactly the blocks whose spans it covers (DecodeBlockInto), without
// its neighbors.
type BlockLayout struct {
	N          int
	BlockElems int
	Blocks     []Range
}

// ElemRange returns the element span [lo, hi) that block b of the
// layout reconstructs.
func (l BlockLayout) ElemRange(b int) (lo, hi int) {
	lo = b * l.BlockElems
	hi = lo + l.BlockElems
	if hi > l.N {
		hi = l.N
	}
	return lo, hi
}

// HeaderPrefixLen is the number of leading bytes of an SZG2 stream
// that always contain the fixed header fields (magic, mode byte, and
// the three size varints); HeaderLenBound needs at most this much.
const HeaderPrefixLen = 5 + 3*binary.MaxVarintLen64

// HeaderLenBound reports an upper bound on the byte length of an SZG2
// container header (through the per-block length table), given the
// stream's first bytes. Streaming readers use it to size the header
// fetch before ParseBlockLayout: peek HeaderPrefixLen bytes, get the
// bound, fetch that much, parse. ok is false when prefix is not the
// start of an SZG2 stream or is too short to tell.
func HeaderLenBound(prefix []byte) (bound int, ok bool) {
	if len(prefix) < len(magicBlocked) || string(prefix[:len(magicBlocked)]) != magicBlocked {
		return 0, false
	}
	off := len(magicBlocked) + 1
	if len(prefix) < off {
		return 0, false
	}
	var nBlocks uint64
	for j := 0; j < 3; j++ {
		v, k := binary.Uvarint(prefix[off:])
		if k <= 0 {
			return 0, false
		}
		off += k
		nBlocks = v
	}
	// Guard the bound arithmetic against a crafted count; the real
	// nBlocks-vs-stream-length check happens in parseBlockedLayout.
	if nBlocks > uint64(1<<31/binary.MaxVarintLen64) {
		return 0, false
	}
	return off + int(nBlocks)*binary.MaxVarintLen64, true
}

// ParseBlockLayout validates an SZG2 container header and returns its
// block layout. header must contain the complete header (magic
// through the block-length table) and may be truncated anywhere after
// it; streamLen is the byte length of the full stream, which the
// crafted-header allocation guards and the block spans are validated
// against. In-memory callers pass the whole stream and its length.
func ParseBlockLayout(header []byte, streamLen int) (BlockLayout, error) {
	if len(header) < len(magicBlocked) || string(header[:len(magicBlocked)]) != magicBlocked {
		return BlockLayout{}, fmt.Errorf("sz: not an SZG2 stream")
	}
	lay, err := parseBlockedLayout(header, streamLen)
	if err != nil {
		return BlockLayout{}, err
	}
	bl := BlockLayout{N: lay.n, BlockElems: lay.blockElems, Blocks: make([]Range, len(lay.offsets)-1)}
	for b := range bl.Blocks {
		bl.Blocks[b] = Range{Start: lay.offsets[b], End: lay.offsets[b+1]}
	}
	return bl, nil
}

// DecodeBlockInto decodes one SZG2 block payload — the bytes of one
// BlockLayout span — into dst, which must hold exactly the block's
// element count (BlockLayout.ElemRange). It is the streaming-decode
// entry point: every block is a fully independent compression unit,
// so a shard holding whole blocks decodes without its neighbors.
func DecodeBlockInto(dst []float64, block []byte) error {
	return decodeBlockInto(dst, block)
}

// BlockRanges returns the absolute byte span of every independently
// compressed block payload inside an SZG2 stream, in order; the first
// span starts after the container header and the last ends at
// len(data). It returns (nil, false) when data is not a valid SZG2
// container (legacy SZG1 streams, other formats, corrupt headers).
//
// The spans are the natural cut points for sharded checkpoint storage:
// splitting the stream at block boundaries yields shards that each hold
// whole compression units, so a future streaming decoder can decompress
// a shard without its neighbors.
func BlockRanges(data []byte) ([]Range, bool) {
	if len(data) < len(magicBlocked) || string(data[:len(magicBlocked)]) != magicBlocked {
		return nil, false
	}
	lay, err := parseBlockedLayout(data, len(data))
	if err != nil {
		return nil, false
	}
	ranges := make([]Range, len(lay.offsets)-1)
	for b := range ranges {
		ranges[b] = Range{Start: lay.offsets[b], End: lay.offsets[b+1]}
	}
	return ranges, true
}

// SplitBlocks partitions an encoded stream into at most maxParts
// contiguous byte spans that cover it exactly. For SZG2 streams every
// cut falls on a block boundary (the container header travels with the
// first span) and the spans are balanced by bytes, not block count, so
// unevenly compressible blocks still split into similar-sized parts.
// Legacy or foreign streams return a single span; maxParts < 1 is
// treated as 1.
//
// Note: this partitions a *bare* SZ stream (e.g. for future
// shard-local streaming decode). The checkpoint writer does not cut
// with it — a checkpoint payload wraps one or more SZ streams in
// snapshot framing, so fti feeds BlockRanges-derived offsets to
// shard.Split, which snaps even cuts of the whole payload to those
// boundaries.
func SplitBlocks(data []byte, maxParts int) []Range {
	if maxParts < 1 {
		maxParts = 1
	}
	whole := []Range{{Start: 0, End: len(data)}}
	if maxParts == 1 {
		return whole
	}
	blocks, ok := BlockRanges(data)
	if !ok || len(blocks) == 0 {
		return whole
	}
	if maxParts > len(blocks) {
		maxParts = len(blocks)
	}
	parts := make([]Range, 0, maxParts)
	start := 0
	bi := 0
	for p := 0; p < maxParts; p++ {
		// Even byte target for the remaining parts, then advance to the
		// nearest block boundary at or past it.
		target := start + (len(data)-start+maxParts-p-1)/(maxParts-p)
		end := len(data)
		if p < maxParts-1 {
			for bi < len(blocks)-1 && blocks[bi].End < target {
				bi++
			}
			end = blocks[bi].End
			bi++
		}
		parts = append(parts, Range{Start: start, End: end})
		if end == len(data) {
			break
		}
		start = end
	}
	return parts
}

// blockedStats reports (nBlocks, blockElems) for an SZG2 stream and
// (1, len) for legacy streams; used by tests and diagnostics.
func blockedStats(data []byte) (nBlocks, blockElems int, blocked bool) {
	if len(data) < 5 || string(data[:4]) != magicBlocked {
		return 1, 0, false
	}
	off := 5
	n, k := binary.Uvarint(data[off:])
	if k <= 0 {
		return 1, 0, false
	}
	off += k
	be, k := binary.Uvarint(data[off:])
	if k <= 0 {
		return 1, 0, false
	}
	off += k
	nb, k := binary.Uvarint(data[off:])
	if k <= 0 {
		return 1, 0, false
	}
	_ = n
	return int(nb), int(be), true
}
