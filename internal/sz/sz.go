// Package sz implements a prediction-based, error-bounded lossy
// floating-point compressor modeled on SZ 1.4 (Di & Cappello, IPDPS'16;
// Tao et al., IPDPS'17), the compressor the paper integrates into its
// lossy checkpointing scheme. The pipeline is the 1D SZ pipeline:
//
//  1. predict each value from previously *reconstructed* values
//     (order-1 Lorenzo or order-2 linear extrapolation),
//  2. quantize the prediction error into 2·eb-wide bins
//     (error-controlled quantization — this is what guarantees the
//     pointwise bound),
//  3. entropy-code the bin indices with a canonical Huffman coder,
//     storing unpredictable values verbatim.
//
// Three error-bound modes are supported: absolute (|x−x′| ≤ eb),
// value-range relative (|x−x′| ≤ eb·(max−min)), and pointwise relative
// (|x−x′| ≤ eb·|x|). The paper's analysis (Theorems 2 and 3) is stated
// in terms of the pointwise-relative bound, implemented here with the
// standard logarithmic-transform reduction to the absolute mode.
package sz

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/huffman"
)

// Mode selects how the error bound is interpreted.
type Mode byte

const (
	// Abs bounds the absolute error: |x_i − x′_i| ≤ eb.
	Abs Mode = iota
	// RelRange bounds error relative to the value range:
	// |x_i − x′_i| ≤ eb·(max_j x_j − min_j x_j).
	RelRange
	// PWRel bounds error relative to each value's magnitude:
	// |x_i − x′_i| ≤ eb·|x_i| — the bound used throughout the paper.
	PWRel
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Abs:
		return "ABS"
	case RelRange:
		return "REL(range)"
	case PWRel:
		return "REL(pointwise)"
	}
	return fmt.Sprintf("Mode(%d)", byte(m))
}

// Predictor selects the prediction rule.
type Predictor byte

const (
	// PredictorAuto picks the cheaper of the two on a sample.
	PredictorAuto Predictor = iota
	// PredictorLorenzo predicts x_i ≈ x′_{i−1} (order-1 Lorenzo).
	PredictorLorenzo
	// PredictorLinear predicts x_i ≈ 2·x′_{i−1} − x′_{i−2}.
	PredictorLinear
)

// Params configure compression. Zero values select the defaults used
// in the paper's experiments (65,536 quantization intervals, automatic
// predictor selection).
type Params struct {
	Mode       Mode
	ErrorBound float64
	Intervals  int // quantization bins; default 65536
	Predictor  Predictor
}

const (
	magic            = "SZG1"
	defaultIntervals = 65536
	kindCore         = 0 // Abs/RelRange payload
	kindConstant     = 1 // degenerate constant vector
	kindLogTransform = 2 // PWRel payload
)

// Compress encodes x under the given parameters. The input is not
// modified. An error is returned for non-finite inputs or invalid
// parameters, never for hard-to-compress data (which degrades to
// stored values).
func Compress(x []float64, p Params) ([]byte, error) {
	if p.ErrorBound <= 0 || math.IsNaN(p.ErrorBound) || math.IsInf(p.ErrorBound, 0) {
		return nil, fmt.Errorf("sz: error bound must be positive and finite, got %v", p.ErrorBound)
	}
	if p.Intervals == 0 {
		p.Intervals = defaultIntervals
	}
	if p.Intervals < 4 || p.Intervals > 1<<24 {
		return nil, fmt.Errorf("sz: intervals %d outside [4, 2^24]", p.Intervals)
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("sz: non-finite value at index %d", i)
		}
	}

	out := []byte(magic)
	out = append(out, byte(p.Mode))

	switch p.Mode {
	case Abs, RelRange:
		eb := p.ErrorBound
		if p.Mode == RelRange {
			lo, hi := valueRange(x)
			eb = p.ErrorBound * (hi - lo)
			if eb == 0 {
				// Constant (or empty) data: store the constant.
				return appendConstant(out, x), nil
			}
		}
		out = append(out, kindCore)
		core, err := encodeCore(x, eb, p.Predictor, p.Intervals)
		if err != nil {
			return nil, err
		}
		return append(out, core...), nil

	case PWRel:
		if p.ErrorBound >= 1 {
			return nil, fmt.Errorf("sz: pointwise-relative bound must be < 1, got %v", p.ErrorBound)
		}
		out = append(out, kindLogTransform)
		payload, err := encodeLogTransform(x, p)
		if err != nil {
			return nil, err
		}
		return append(out, payload...), nil
	}
	return nil, fmt.Errorf("sz: unknown mode %d", p.Mode)
}

// Decompress reverses Compress. The output slice is freshly allocated.
func Decompress(data []byte) ([]float64, error) {
	if len(data) < 6 || string(data[:4]) != magic {
		return nil, fmt.Errorf("sz: bad magic")
	}
	kind := data[5]
	payload := data[6:]
	switch kind {
	case kindConstant:
		return decodeConstant(payload)
	case kindCore:
		return decodeCore(payload)
	case kindLogTransform:
		return decodeLogTransform(payload)
	}
	return nil, fmt.Errorf("sz: unknown payload kind %d", kind)
}

// Ratio returns the compression ratio original/compressed in bytes.
func Ratio(n int, compressed []byte) float64 {
	if len(compressed) == 0 {
		return 0
	}
	return float64(8*n) / float64(len(compressed))
}

func valueRange(x []float64) (lo, hi float64) {
	if len(x) == 0 {
		return 0, 0
	}
	lo, hi = x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

func appendConstant(out []byte, x []float64) []byte {
	out = append(out, kindConstant)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(x)))
	out = append(out, b[:]...)
	c := 0.0
	if len(x) > 0 {
		c = x[0]
	}
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(c))
	return append(out, b[:]...)
}

func decodeConstant(p []byte) ([]float64, error) {
	if len(p) != 16 {
		return nil, fmt.Errorf("sz: constant payload must be 16 bytes, got %d", len(p))
	}
	n := int(binary.LittleEndian.Uint64(p))
	if n < 0 {
		return nil, fmt.Errorf("sz: negative length")
	}
	c := math.Float64frombits(binary.LittleEndian.Uint64(p[8:]))
	out := make([]float64, n)
	for i := range out {
		out[i] = c
	}
	return out, nil
}

// predict applies the chosen predictor to the reconstructed prefix.
func predict(recon []float64, i int, pred Predictor) float64 {
	switch {
	case i == 0:
		return 0
	case i == 1 || pred == PredictorLorenzo:
		return recon[i-1]
	default: // PredictorLinear
		return 2*recon[i-1] - recon[i-2]
	}
}

// choosePredictor dry-runs both predictors on a sample and picks the
// one with the lower total coded-magnitude proxy.
func choosePredictor(x []float64, eb float64, intervals int) Predictor {
	n := len(x)
	if n > 4096 {
		n = 4096
	}
	half := intervals / 2
	cost := func(pred Predictor) float64 {
		recon := make([]float64, n)
		var c float64
		for i := 0; i < n; i++ {
			p := predict(recon, i, pred)
			diff := x[i] - p
			binF := diff / (2 * eb)
			if math.Abs(binF) >= float64(half-1) {
				c += 64 // unpredictable: full value stored
				recon[i] = x[i]
				continue
			}
			bin := math.Round(binF)
			c += math.Log2(1 + math.Abs(bin)*2 + 1) // entropy proxy
			recon[i] = p + 2*eb*bin
		}
		return c
	}
	if cost(PredictorLinear) < cost(PredictorLorenzo) {
		return PredictorLinear
	}
	return PredictorLorenzo
}

// encodeCore runs the ABS-bound pipeline: predict → quantize → Huffman.
func encodeCore(x []float64, eb float64, pred Predictor, intervals int) ([]byte, error) {
	if pred == PredictorAuto {
		pred = choosePredictor(x, eb, intervals)
	}
	n := len(x)
	half := intervals / 2
	codes := make([]int, n)
	recon := make([]float64, n)
	var unpred []float64
	for i := 0; i < n; i++ {
		p := predict(recon, i, pred)
		diff := x[i] - p
		binF := diff / (2 * eb)
		quantized := false
		if math.Abs(binF) < float64(half-1) {
			bin := math.Round(binF)
			r := p + 2*eb*bin
			// Safety net against floating-point rounding at the bin
			// edge: fall back to storing the value if the
			// reconstruction misses the bound.
			if math.Abs(x[i]-r) <= eb {
				codes[i] = half + int(bin)
				recon[i] = r
				quantized = true
			}
		}
		if !quantized {
			codes[i] = 0
			recon[i] = x[i]
			unpred = append(unpred, x[i])
		}
	}
	hstream, err := huffman.Encode(codes, intervals)
	if err != nil {
		return nil, err
	}

	var out []byte
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		k := binary.PutUvarint(scratch[:], v)
		out = append(out, scratch[:k]...)
	}
	putUvarint(uint64(n))
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(eb))
	out = append(out, b8[:]...)
	out = append(out, byte(pred))
	putUvarint(uint64(intervals))
	putUvarint(uint64(len(unpred)))
	putUvarint(uint64(len(hstream)))
	out = append(out, hstream...)
	for _, v := range unpred {
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(v))
		out = append(out, b8[:]...)
	}
	return out, nil
}

func decodeCore(p []byte) ([]float64, error) {
	off := 0
	getUvarint := func() (uint64, error) {
		v, k := binary.Uvarint(p[off:])
		if k <= 0 {
			return 0, fmt.Errorf("sz: truncated core header")
		}
		off += k
		return v, nil
	}
	n64, err := getUvarint()
	if err != nil {
		return nil, err
	}
	if off+9 > len(p) {
		return nil, fmt.Errorf("sz: truncated core header")
	}
	eb := math.Float64frombits(binary.LittleEndian.Uint64(p[off:]))
	off += 8
	pred := Predictor(p[off])
	off++
	intervals64, err := getUvarint()
	if err != nil {
		return nil, err
	}
	nUnpred, err := getUvarint()
	if err != nil {
		return nil, err
	}
	hlen, err := getUvarint()
	if err != nil {
		return nil, err
	}
	if off+int(hlen)+8*int(nUnpred) > len(p) {
		return nil, fmt.Errorf("sz: truncated core payload")
	}
	codes, err := huffman.Decode(p[off : off+int(hlen)])
	if err != nil {
		return nil, err
	}
	off += int(hlen)
	n := int(n64)
	if len(codes) != n {
		return nil, fmt.Errorf("sz: decoded %d codes for %d values", len(codes), n)
	}
	intervals := int(intervals64)
	half := intervals / 2
	recon := make([]float64, n)
	ui := 0
	for i := 0; i < n; i++ {
		c := codes[i]
		if c == 0 {
			if ui >= int(nUnpred) {
				return nil, fmt.Errorf("sz: unpredictable count overflow at %d", i)
			}
			recon[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[off+8*ui:]))
			ui++
			continue
		}
		bin := float64(c - half)
		recon[i] = predict(recon, i, pred) + 2*eb*bin
	}
	if ui != int(nUnpred) {
		return nil, fmt.Errorf("sz: %d unpredictable values stored, %d consumed", nUnpred, ui)
	}
	return recon, nil
}

// tinyThreshold separates values that survive the log transform from
// deep subnormals: below the smallest normal float64, exp(ln|v|)
// cannot reproduce v within any relative bound (the ulp of a subnormal
// is comparable to the value itself), so such values are stored
// verbatim. Real SZ shares this limitation; storing them exactly is
// strictly safer.
const tinyThreshold = 2.2250738585072014e-308 // math.SmallestNormalFloat64

// encodeLogTransform implements the pointwise-relative bound by
// compressing ln|x| under the absolute bound ln(1+eb). Signs, exact
// zeros, and subnormal values travel in side channels; zeros and
// subnormals reconstruct exactly, trivially satisfying the bound.
func encodeLogTransform(x []float64, p Params) ([]byte, error) {
	n := len(x)
	signs := make([]byte, (n+7)/8)
	zeros := make([]byte, (n+7)/8)
	tiny := make([]byte, (n+7)/8)
	var exact []float64
	logs := make([]float64, 0, n)
	for i, v := range x {
		if v == 0 {
			zeros[i/8] |= 1 << (i % 8)
			continue
		}
		if v < 0 {
			signs[i/8] |= 1 << (i % 8)
		}
		if math.Abs(v) < tinyThreshold {
			tiny[i/8] |= 1 << (i % 8)
			exact = append(exact, math.Abs(v))
			continue
		}
		logs = append(logs, math.Log(math.Abs(v)))
	}
	core, err := encodeCore(logs, math.Log1p(p.ErrorBound), p.Predictor, p.Intervals)
	if err != nil {
		return nil, err
	}
	var out []byte
	var scratch [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(scratch[:], uint64(n))
	out = append(out, scratch[:k]...)
	out = append(out, zeros...)
	out = append(out, signs...)
	out = append(out, tiny...)
	k = binary.PutUvarint(scratch[:], uint64(len(exact)))
	out = append(out, scratch[:k]...)
	var b8 [8]byte
	for _, v := range exact {
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(v))
		out = append(out, b8[:]...)
	}
	return append(out, core...), nil
}

func decodeLogTransform(p []byte) ([]float64, error) {
	n64, k := binary.Uvarint(p)
	if k <= 0 {
		return nil, fmt.Errorf("sz: truncated log header")
	}
	n := int(n64)
	off := k
	nb := (n + 7) / 8
	if off+3*nb > len(p) {
		return nil, fmt.Errorf("sz: truncated bitmaps")
	}
	zeros := p[off : off+nb]
	signs := p[off+nb : off+2*nb]
	tiny := p[off+2*nb : off+3*nb]
	off += 3 * nb
	nExact64, k := binary.Uvarint(p[off:])
	if k <= 0 {
		return nil, fmt.Errorf("sz: truncated exact-list header")
	}
	off += k
	nExact := int(nExact64)
	if off+8*nExact > len(p) {
		return nil, fmt.Errorf("sz: truncated exact list")
	}
	exact := make([]float64, nExact)
	for i := range exact {
		exact[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[off:]))
		off += 8
	}
	logs, err := decodeCore(p[off:])
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	li, ei := 0, 0
	for i := 0; i < n; i++ {
		if zeros[i/8]&(1<<(i%8)) != 0 {
			continue
		}
		var v float64
		if tiny[i/8]&(1<<(i%8)) != 0 {
			if ei >= nExact {
				return nil, fmt.Errorf("sz: exact list underflow at %d", i)
			}
			v = exact[ei]
			ei++
		} else {
			if li >= len(logs) {
				return nil, fmt.Errorf("sz: log stream underflow at %d", i)
			}
			v = math.Exp(logs[li])
			li++
		}
		if signs[i/8]&(1<<(i%8)) != 0 {
			v = -v
		}
		out[i] = v
	}
	if li != len(logs) || ei != nExact {
		return nil, fmt.Errorf("sz: stored %d logs/%d exact, consumed %d/%d", len(logs), nExact, li, ei)
	}
	return out, nil
}
