// Package sz implements a prediction-based, error-bounded lossy
// floating-point compressor modeled on SZ 1.4 (Di & Cappello, IPDPS'16;
// Tao et al., IPDPS'17), the compressor the paper integrates into its
// lossy checkpointing scheme. The pipeline is the 1D SZ pipeline:
//
//  1. predict each value from previously *reconstructed* values
//     (order-1 Lorenzo or order-2 linear extrapolation),
//  2. quantize the prediction error into 2·eb-wide bins
//     (error-controlled quantization — this is what guarantees the
//     pointwise bound),
//  3. entropy-code the bin indices with a canonical Huffman coder,
//     storing unpredictable values verbatim.
//
// Three error-bound modes are supported: absolute (|x−x′| ≤ eb),
// value-range relative (|x−x′| ≤ eb·(max−min)), and pointwise relative
// (|x−x′| ≤ eb·|x|). The paper's analysis (Theorems 2 and 3) is stated
// in terms of the pointwise-relative bound, implemented here with the
// standard logarithmic-transform reduction to the absolute mode.
//
// Two container formats exist. Inputs that fit in a single block are
// written in the legacy single-stream "SZG1" format. Larger inputs use
// the blocked "SZG2" container: the vector is split into fixed-size
// blocks that are compressed and decompressed independently — each
// block carries its own predictor state and Huffman table — so the
// whole pipeline parallelizes across blocks (see internal/parallel)
// while the pointwise error bound is preserved exactly. Decompress
// accepts both formats, so legacy SZG1 checkpoints remain readable.
package sz

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"repro/internal/huffman"
	"repro/internal/parallel"
)

// Mode selects how the error bound is interpreted.
type Mode byte

const (
	// Abs bounds the absolute error: |x_i − x′_i| ≤ eb.
	Abs Mode = iota
	// RelRange bounds error relative to the value range:
	// |x_i − x′_i| ≤ eb·(max_j x_j − min_j x_j).
	RelRange
	// PWRel bounds error relative to each value's magnitude:
	// |x_i − x′_i| ≤ eb·|x_i| — the bound used throughout the paper.
	PWRel
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Abs:
		return "ABS"
	case RelRange:
		return "REL(range)"
	case PWRel:
		return "REL(pointwise)"
	}
	return fmt.Sprintf("Mode(%d)", byte(m))
}

// Predictor selects the prediction rule.
type Predictor byte

const (
	// PredictorAuto picks the cheaper of the two on a sample.
	PredictorAuto Predictor = iota
	// PredictorLorenzo predicts x_i ≈ x′_{i−1} (order-1 Lorenzo).
	PredictorLorenzo
	// PredictorLinear predicts x_i ≈ 2·x′_{i−1} − x′_{i−2}.
	PredictorLinear
)

// Params configure compression. Zero values select the defaults used
// in the paper's experiments (65,536 quantization intervals, automatic
// predictor selection, 32,768-element blocks).
type Params struct {
	Mode       Mode
	ErrorBound float64
	Intervals  int // quantization bins; default 65536
	Predictor  Predictor
	// BlockSize is the number of elements per independently compressed
	// block in the SZG2 container (default 32,768 elements = 256 KiB).
	// Inputs of at most BlockSize elements are written in the legacy
	// single-stream SZG1 format. Smaller blocks expose more
	// parallelism but pay one Huffman table per block.
	BlockSize int
}

const (
	magic            = "SZG1"
	magicBlocked     = "SZG2"
	defaultIntervals = 65536
	// defaultBlockElems is 256 KiB of float64s, in the 64–256 KiB
	// block-size range production SZ implementations use: large enough
	// to amortize the per-block Huffman table, small enough that even
	// modest vectors split across all cores.
	defaultBlockElems = 32768
	kindCore          = 0 // Abs/RelRange payload
	kindConstant      = 1 // degenerate constant vector
	kindLogTransform  = 2 // PWRel payload
)

// Compress encodes x under the given parameters. The input is not
// modified. An error is returned for non-finite inputs or invalid
// parameters, never for hard-to-compress data (which degrades to
// stored values).
func Compress(x []float64, p Params) ([]byte, error) {
	p, err := normalizeParams(x, p)
	if err != nil {
		return nil, err
	}
	if len(x) <= p.BlockSize {
		return compressLegacy(x, p)
	}
	return compressBlocked(x, p)
}

// normalizeParams validates p against x and fills defaults; Compress
// and CompressWithStats share it so both accept exactly the same
// inputs.
func normalizeParams(x []float64, p Params) (Params, error) {
	if p.ErrorBound <= 0 || math.IsNaN(p.ErrorBound) || math.IsInf(p.ErrorBound, 0) {
		return p, fmt.Errorf("sz: error bound must be positive and finite, got %v", p.ErrorBound)
	}
	if p.Intervals == 0 {
		p.Intervals = defaultIntervals
	}
	if p.Intervals < 4 || p.Intervals > 1<<24 {
		return p, fmt.Errorf("sz: intervals %d outside [4, 2^24]", p.Intervals)
	}
	if p.BlockSize < 0 {
		return p, fmt.Errorf("sz: negative block size %d", p.BlockSize)
	}
	if p.BlockSize == 0 {
		p.BlockSize = defaultBlockElems
	}
	if p.Mode == PWRel && p.ErrorBound >= 1 {
		return p, fmt.Errorf("sz: pointwise-relative bound must be < 1, got %v", p.ErrorBound)
	}
	if i := firstNonFinite(x); i >= 0 {
		return p, fmt.Errorf("sz: non-finite value at index %d", i)
	}
	return p, nil
}

// firstNonFinite scans x concurrently and returns the smallest index
// holding a NaN or Inf, or -1 if all values are finite.
func firstNonFinite(x []float64) int {
	var first atomic.Int64
	first.Store(int64(len(x)))
	// NaN and ±Inf share an all-ones biased exponent, so one integer
	// mask-and-compare per element replaces the IsNaN/IsInf pair.
	const expMask = 0x7FF0000000000000
	parallel.For(len(x), parallel.Grain(len(x), 1<<14, 4), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if math.Float64bits(x[i])&expMask == expMask {
				// Keep the smallest offending index so the error
				// message is deterministic under any schedule.
				for {
					cur := first.Load()
					if int64(i) >= cur || first.CompareAndSwap(cur, int64(i)) {
						break
					}
				}
				return
			}
		}
	})
	if v := first.Load(); v < int64(len(x)) {
		return int(v)
	}
	return -1
}

// compressLegacy emits the single-stream SZG1 format, byte-compatible
// with streams written before the blocked container existed.
func compressLegacy(x []float64, p Params) ([]byte, error) {
	out := []byte(magic)
	out = append(out, byte(p.Mode))

	switch p.Mode {
	case Abs, RelRange:
		eb := p.ErrorBound
		if p.Mode == RelRange {
			lo, hi := valueRange(x)
			eb = p.ErrorBound * (hi - lo)
			if eb == 0 {
				// Constant (or empty) data: store the constant.
				return appendConstant(out, x), nil
			}
		}
		out = append(out, kindCore)
		return appendCore(out, x, eb, p.Predictor, p.Intervals)

	case PWRel:
		out = append(out, kindLogTransform)
		return appendLogTransform(out, x, p)
	}
	return nil, fmt.Errorf("sz: unknown mode %d", p.Mode)
}

// Decompress reverses Compress. The output slice is freshly allocated.
// Both the blocked SZG2 container and the legacy SZG1 single-stream
// format are accepted.
func Decompress(data []byte) ([]float64, error) {
	if len(data) >= 4 && string(data[:4]) == magicBlocked {
		return decompressBlocked(data)
	}
	if len(data) < 6 || string(data[:4]) != magic {
		return nil, fmt.Errorf("sz: bad magic")
	}
	kind := data[5]
	payload := data[6:]
	switch kind {
	case kindConstant:
		return decodeConstant(payload)
	case kindCore:
		return decodeCoreInto(payload, nil)
	case kindLogTransform:
		return decodeLogTransformInto(payload, nil)
	}
	return nil, fmt.Errorf("sz: unknown payload kind %d", kind)
}

// DecompressInto reverses Compress into a caller-provided slice: dst
// must have exactly the stream's element count, and no output
// allocation is performed — the restore path uses it to reconstruct
// checkpointed vectors straight into the solver's registered state.
// Both the blocked SZG2 container and the legacy SZG1 single-stream
// format are accepted, and the reconstruction is bitwise identical to
// Decompress. Every element of dst is overwritten on success; on
// error dst's contents are unspecified.
func DecompressInto(dst []float64, data []byte) error {
	if len(data) >= 4 && string(data[:4]) == magicBlocked {
		return decompressBlockedInto(data, dst)
	}
	if len(data) < 6 || string(data[:4]) != magic {
		return fmt.Errorf("sz: bad magic")
	}
	kind := data[5]
	payload := data[6:]
	switch kind {
	case kindConstant:
		return decodeConstantInto(payload, dst)
	case kindCore:
		_, err := decodeCoreInto(payload, ensureNonNil(dst))
		return err
	case kindLogTransform:
		_, err := decodeLogTransformInto(payload, ensureNonNil(dst))
		return err
	}
	return fmt.Errorf("sz: unknown payload kind %d", kind)
}

// ensureNonNil keeps a nil (zero-length) destination on the in-place
// path of the decode helpers, which treat nil as "allocate".
func ensureNonNil(dst []float64) []float64 {
	if dst == nil {
		return []float64{}
	}
	return dst
}

// Ratio returns the compression ratio original/compressed in bytes.
func Ratio(n int, compressed []byte) float64 {
	if len(compressed) == 0 {
		return 0
	}
	return float64(8*n) / float64(len(compressed))
}

func valueRange(x []float64) (lo, hi float64) {
	if len(x) == 0 {
		return 0, 0
	}
	lo, hi = x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

func appendConstant(out []byte, x []float64) []byte {
	out = append(out, kindConstant)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(x)))
	out = append(out, b[:]...)
	c := 0.0
	if len(x) > 0 {
		c = x[0]
	}
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(c))
	return append(out, b[:]...)
}

func decodeConstant(p []byte) ([]float64, error) {
	if len(p) != 16 {
		return nil, fmt.Errorf("sz: constant payload must be 16 bytes, got %d", len(p))
	}
	n := int(binary.LittleEndian.Uint64(p))
	if n < 0 {
		return nil, fmt.Errorf("sz: negative length")
	}
	// A constant stream legitimately encodes any vector in 16 bytes,
	// so n cannot be bounded by the payload; cap it at a count far
	// beyond any real vector (2^48 elements = 2 PB) so a corrupt
	// header errors instead of panicking in makeslice.
	if n > 1<<48 {
		return nil, fmt.Errorf("sz: constant stream claims %d values", n)
	}
	out := make([]float64, n)
	if err := decodeConstantInto(p, out); err != nil {
		return nil, err
	}
	return out, nil
}

// decodeConstantInto fills dst with the stored constant; dst's length
// must match the stored element count.
func decodeConstantInto(p []byte, dst []float64) error {
	if len(p) != 16 {
		return fmt.Errorf("sz: constant payload must be 16 bytes, got %d", len(p))
	}
	n := int(binary.LittleEndian.Uint64(p))
	if n < 0 {
		return fmt.Errorf("sz: negative length")
	}
	if len(dst) != n {
		return fmt.Errorf("sz: constant stream holds %d values, dst has %d", n, len(dst))
	}
	c := math.Float64frombits(binary.LittleEndian.Uint64(p[8:]))
	for i := range dst {
		dst[i] = c
	}
	return nil
}

// roundMagic rounds a float64 to the nearest integer (ties to even) by
// pushing it past the mantissa's integer boundary: adding 1.5·2^52
// forces the fraction bits out in one rounding, and subtracting it
// back recovers the rounded value. Valid for |v| < 2^51 — quantization
// bins are bounded by intervals/2 ≤ 2^23, far inside. Two float adds
// replace a math.Round call in the hottest loop. Ties round to even
// where math.Round rounds away from zero; either neighbor bin
// reconstructs at exactly eb error on a tie, so the bound recheck in
// quantStep keeps the guarantee independent of tie direction.
const roundMagic = 6755399441055744.0 // 1.5 * 2^52

// quantStep quantizes one value against its prediction: the returned
// code is 0 (unpredictable — caller stores v verbatim) or half+bin,
// and the returned value is the reconstruction the decoder will see
// (v itself when unpredictable), which becomes the next prediction
// input. inv = 1/(2·eb), twoEB = 2·eb, limit = float64(half−1). The
// bound recheck makes the quantizer self-verifying: any rounding slip
// at a bin edge (including the inv-multiply replacing the old
// division) demotes the value to unpredictable instead of breaking
// the error bound.
func quantStep(v, p, inv, twoEB, eb, limit float64, half int) (int, float64) {
	binF := (v - p) * inv
	if binF < limit && binF > -limit { // false for NaN/Inf → unpredictable
		bin := binF + roundMagic - roundMagic
		r := p + twoEB*bin
		d := v - r
		if d <= eb && d >= -eb {
			return half + int(bin), r
		}
	}
	return 0, v
}

// choosePredictor dry-runs both predictors on a sample and picks the
// one with the lower total coded-magnitude proxy (bits.Len of the bin
// magnitude — an integer stand-in for the log2 entropy proxy).
func choosePredictor(x []float64, eb float64, intervals int) Predictor {
	n := len(x)
	if n > 4096 {
		n = 4096
	}
	half := intervals / 2
	inv := 1 / (2 * eb)
	twoEB := 2 * eb
	limit := float64(half - 1)
	cost := func(pred Predictor) int {
		c := 0
		var prev, prev2 float64
		for i := 0; i < n; i++ {
			p := 2*prev - prev2
			if pred == PredictorLorenzo {
				p = prev
			}
			if i == 0 {
				p = 0
			} else if i == 1 {
				p = prev
			}
			code, r := quantStep(x[i], p, inv, twoEB, eb, limit, half)
			if code == 0 {
				c += 64 // unpredictable: full value stored
			} else {
				d := code - half
				if d < 0 {
					d = -d
				}
				c += bits.Len64(uint64(2*d + 2))
			}
			prev2 = prev
			prev = r
		}
		return c
	}
	if cost(PredictorLinear) < cost(PredictorLorenzo) {
		return PredictorLinear
	}
	return PredictorLorenzo
}

// appendCore runs the ABS-bound pipeline (predict → quantize →
// Huffman), appending the payload to dst. All large scratch state
// comes from the parallel package's pools, keeping the per-call
// allocation profile flat even when many blocks encode concurrently.
// The predict→quantize loop is specialized per predictor: the
// reconstructed prefix lives in one or two registers instead of a
// side array, and quantStep's multiply-and-magic-round replaces the
// divide-and-math.Round of the generic path.
func appendCore(dst []byte, x []float64, eb float64, pred Predictor, intervals int) ([]byte, error) {
	if pred == PredictorAuto {
		pred = choosePredictor(x, eb, intervals)
	}
	n := len(x)
	half := intervals / 2
	codes := parallel.GetInts(n)[:n]
	defer parallel.PutInts(codes)
	unpred := parallel.GetFloat64s(0)
	defer func() { parallel.PutFloat64s(unpred) }()
	inv := 1 / (2 * eb)
	twoEB := 2 * eb
	limit := float64(half - 1)
	if pred == PredictorLorenzo {
		prev := 0.0
		for i, v := range x {
			code, r := quantStep(v, prev, inv, twoEB, eb, limit, half)
			if code == 0 {
				unpred = append(unpred, v)
			}
			codes[i] = code
			prev = r
		}
	} else {
		var prev, prev2 float64
		i := 0
		// The first two elements use the short-prefix predictors
		// (0, then previous), peeled so the steady-state loop is
		// branch-free on the index.
		for ; i < n && i < 2; i++ {
			p := 0.0
			if i == 1 {
				p = prev
			}
			code, r := quantStep(x[i], p, inv, twoEB, eb, limit, half)
			if code == 0 {
				unpred = append(unpred, x[i])
			}
			codes[i] = code
			prev2 = prev
			prev = r
		}
		for ; i < n; i++ {
			v := x[i]
			code, r := quantStep(v, 2*prev-prev2, inv, twoEB, eb, limit, half)
			if code == 0 {
				unpred = append(unpred, v)
			}
			codes[i] = code
			prev2 = prev
			prev = r
		}
	}
	hstream := parallel.GetBytes(n)
	defer func() { parallel.PutBytes(hstream) }()
	hstream, err := huffman.AppendEncode(hstream, codes, intervals)
	if err != nil {
		return nil, err
	}
	return emitCore(dst, n, eb, pred, intervals, hstream, unpred), nil
}

// emitCore appends the core payload framing (header, Huffman stream,
// unpredictable values) to dst. appendCore and the stats-accumulating
// encode path both emit through it, so their output bytes cannot
// diverge.
func emitCore(dst []byte, n int, eb float64, pred Predictor, intervals int, hstream []byte, unpred []float64) []byte {
	out := dst
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		k := binary.PutUvarint(scratch[:], v)
		out = append(out, scratch[:k]...)
	}
	putUvarint(uint64(n))
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(eb))
	out = append(out, b8[:]...)
	out = append(out, byte(pred))
	putUvarint(uint64(intervals))
	putUvarint(uint64(len(unpred)))
	putUvarint(uint64(len(hstream)))
	out = append(out, hstream...)
	for _, v := range unpred {
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(v))
		out = append(out, b8[:]...)
	}
	return out
}

// decodeCoreInto decodes a core payload. When dst is non-nil its
// length must match the stored element count and the reconstruction is
// written in place (the blocked container decodes each block straight
// into its slice of the output vector); when dst is nil a fresh slice
// is allocated.
func decodeCoreInto(p []byte, dst []float64) ([]float64, error) {
	off := 0
	getUvarint := func() (uint64, error) {
		v, k := binary.Uvarint(p[off:])
		if k <= 0 {
			return 0, fmt.Errorf("sz: truncated core header")
		}
		off += k
		return v, nil
	}
	n64, err := getUvarint()
	if err != nil {
		return nil, err
	}
	if off+9 > len(p) {
		return nil, fmt.Errorf("sz: truncated core header")
	}
	eb := math.Float64frombits(binary.LittleEndian.Uint64(p[off:]))
	off += 8
	pred := Predictor(p[off])
	off++
	intervals64, err := getUvarint()
	if err != nil {
		return nil, err
	}
	nUnpred, err := getUvarint()
	if err != nil {
		return nil, err
	}
	hlen, err := getUvarint()
	if err != nil {
		return nil, err
	}
	if off+int(hlen)+8*int(nUnpred) > len(p) {
		return nil, fmt.Errorf("sz: truncated core payload")
	}
	// Every value costs at least one bit in the Huffman stream, so a
	// count beyond 8× the payload bytes is corrupt; checking before
	// allocating keeps crafted headers from demanding terabytes.
	if n64 > 8*uint64(len(p)) {
		return nil, fmt.Errorf("sz: %d values exceed %d payload bytes", n64, len(p))
	}
	cbuf := parallel.GetInts(int(n64))
	codes, err := huffman.DecodeInto(p[off:off+int(hlen)], cbuf)
	if err != nil {
		parallel.PutInts(cbuf)
		return nil, err
	}
	defer parallel.PutInts(codes)
	off += int(hlen)
	n := int(n64)
	if len(codes) != n {
		return nil, fmt.Errorf("sz: decoded %d codes for %d values", len(codes), n)
	}
	intervals := int(intervals64)
	half := intervals / 2
	recon := dst
	if recon == nil {
		recon = make([]float64, n)
	} else if len(recon) != n {
		return nil, fmt.Errorf("sz: core block holds %d values, expected %d", n, len(recon))
	}
	// Reconstruction mirrors the encoder's specialized loops: the
	// predictor inputs live in registers, and the arithmetic
	// (prediction + 2·eb·bin) is identical to the generic predict()
	// path, so streams written before the specialization decode
	// bitwise identically. Any predictor byte other than Lorenzo —
	// Linear, or junk from a corrupt stream — takes the linear path,
	// matching the generic switch's default arm.
	twoEB := 2 * eb
	ui := 0
	nu := int(nUnpred)
	unpredAt := func(i int) (float64, error) {
		if ui >= nu {
			return 0, fmt.Errorf("sz: unpredictable count overflow at %d", i)
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(p[off+8*ui:]))
		ui++
		return v, nil
	}
	if pred == PredictorLorenzo {
		prev := 0.0
		for i, c := range codes {
			var v float64
			if c == 0 {
				var err error
				if v, err = unpredAt(i); err != nil {
					return nil, err
				}
			} else {
				v = prev + twoEB*float64(c-half)
			}
			recon[i] = v
			prev = v
		}
	} else {
		var prev, prev2 float64
		for i, c := range codes {
			pr := 2*prev - prev2
			if i == 0 {
				pr = 0
			} else if i == 1 {
				pr = prev
			}
			var v float64
			if c == 0 {
				var err error
				if v, err = unpredAt(i); err != nil {
					return nil, err
				}
			} else {
				v = pr + twoEB*float64(c-half)
			}
			recon[i] = v
			prev2 = prev
			prev = v
		}
	}
	if ui != nu {
		return nil, fmt.Errorf("sz: %d unpredictable values stored, %d consumed", nUnpred, ui)
	}
	return recon, nil
}

// tinyThreshold separates values that survive the log transform from
// deep subnormals: below the smallest normal float64, exp(ln|v|)
// cannot reproduce v within any relative bound (the ulp of a subnormal
// is comparable to the value itself), so such values are stored
// verbatim. Real SZ shares this limitation; storing them exactly is
// strictly safer.
const tinyThreshold = 2.2250738585072014e-308 // math.SmallestNormalFloat64

// appendLogTransform implements the pointwise-relative bound by
// compressing ln|x| under the absolute bound ln(1+eb), appending the
// payload to dst. Signs, exact zeros, and subnormal values travel in
// side channels; zeros and subnormals reconstruct exactly, trivially
// satisfying the bound.
func appendLogTransform(dst []byte, x []float64, p Params) ([]byte, error) {
	n := len(x)
	nb := (n + 7) / 8
	// One pooled buffer holds all three bitmaps back to back in stream
	// order (zeros | signs | tiny), so emitting them is a single append.
	bitmaps := parallel.GetBytes(3 * nb)[:3*nb]
	defer func() { parallel.PutBytes(bitmaps) }()
	for i := range bitmaps {
		bitmaps[i] = 0
	}
	zeros := bitmaps[:nb]
	signs := bitmaps[nb : 2*nb]
	tiny := bitmaps[2*nb : 3*nb]
	var exact []float64
	logs := parallel.GetFloat64s(n)
	defer func() { parallel.PutFloat64s(logs) }()

	// fastLog is accurate to fastLogErr, not correctly rounded, so the
	// encoder quantizes under a bound tightened by exactly that much:
	// reconstruction stays within ln(1+eb) of the true logarithm. The
	// tightened bound travels in the core sub-stream, so decoders are
	// oblivious. For bounds so tight the tightening would cost more
	// than half the budget (eb below ~2e-12), fall back to math.Log.
	lnb := math.Log1p(p.ErrorBound)
	lnbEnc := lnb - fastLogErr
	useFast := lnbEnc > 0.5*lnb
	if !useFast {
		lnbEnc = lnb
	}

	// Classification works on the raw bits: sign, zero, and subnormal
	// tests are integer compares (tinyThreshold is the smallest normal,
	// so "below it" is exactly "biased exponent zero").
	for i, v := range x {
		b := math.Float64bits(v)
		abs := b &^ (1 << 63)
		bit := byte(1) << (uint(i) & 7)
		if abs == 0 {
			zeros[i>>3] |= bit
			continue
		}
		if b != abs {
			signs[i>>3] |= bit
		}
		if abs < 1<<52 { // biased exponent 0: subnormal
			tiny[i>>3] |= bit
			exact = append(exact, math.Float64frombits(abs))
			continue
		}
		if useFast {
			logs = append(logs, fastLog(abs))
		} else {
			logs = append(logs, math.Log(math.Float64frombits(abs)))
		}
	}
	out := dst
	var scratch [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(scratch[:], uint64(n))
	out = append(out, scratch[:k]...)
	out = append(out, bitmaps...)
	k = binary.PutUvarint(scratch[:], uint64(len(exact)))
	out = append(out, scratch[:k]...)
	var b8 [8]byte
	for _, v := range exact {
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(v))
		out = append(out, b8[:]...)
	}
	return appendCore(out, logs, lnbEnc, p.Predictor, p.Intervals)
}

// decodeLogTransformInto decodes a log-transform payload, writing into
// dst when non-nil (its length must match the stored count).
func decodeLogTransformInto(p []byte, dst []float64) ([]float64, error) {
	n64, k := binary.Uvarint(p)
	if k <= 0 {
		return nil, fmt.Errorf("sz: truncated log header")
	}
	n := int(n64)
	off := k
	nb := (n + 7) / 8
	if off+3*nb > len(p) {
		return nil, fmt.Errorf("sz: truncated bitmaps")
	}
	zeros := p[off : off+nb]
	signs := p[off+nb : off+2*nb]
	tiny := p[off+2*nb : off+3*nb]
	off += 3 * nb
	nExact64, k := binary.Uvarint(p[off:])
	if k <= 0 {
		return nil, fmt.Errorf("sz: truncated exact-list header")
	}
	off += k
	nExact := int(nExact64)
	if off+8*nExact > len(p) {
		return nil, fmt.Errorf("sz: truncated exact list")
	}
	exact := make([]float64, nExact)
	for i := range exact {
		exact[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[off:]))
		off += 8
	}
	// The core sub-stream leads with its element count; peeking it lets
	// the log buffer come from the scratch pool instead of a fresh
	// allocation per block.
	nLogs64, k := binary.Uvarint(p[off:])
	if k <= 0 {
		return nil, fmt.Errorf("sz: truncated core header")
	}
	if nLogs64 > uint64(n) {
		return nil, fmt.Errorf("sz: %d logs for %d values", nLogs64, n)
	}
	lbuf := parallel.GetFloat64s(int(nLogs64))
	defer func() { parallel.PutFloat64s(lbuf) }()
	lbuf = lbuf[:nLogs64]
	logs, err := decodeCoreInto(p[off:], lbuf)
	if err != nil {
		return nil, err
	}
	out := dst
	if out == nil {
		out = make([]float64, n)
	} else if len(out) != n {
		return nil, fmt.Errorf("sz: log block holds %d values, expected %d", n, len(out))
	}
	li, ei := 0, 0
	for i := 0; i < n; i++ {
		if zeros[i/8]&(1<<(i%8)) != 0 {
			out[i] = 0
			continue
		}
		var v float64
		if tiny[i/8]&(1<<(i%8)) != 0 {
			if ei >= nExact {
				return nil, fmt.Errorf("sz: exact list underflow at %d", i)
			}
			v = exact[ei]
			ei++
		} else {
			if li >= len(logs) {
				return nil, fmt.Errorf("sz: log stream underflow at %d", i)
			}
			v = math.Exp(logs[li])
			li++
		}
		if signs[i/8]&(1<<(i%8)) != 0 {
			v = -v
		}
		out[i] = v
	}
	if li != len(logs) || ei != nExact {
		return nil, fmt.Errorf("sz: stored %d logs/%d exact, consumed %d/%d", len(logs), nExact, li, ei)
	}
	return out, nil
}
