package sz

import "math"

// The pointwise-relative mode spends most of its non-Huffman time in
// math.Log: one call per finite nonzero value. fastLog replaces it on
// the compression side with a 128-entry table method (the standard
// invc/logc reduction used by fast libm implementations): for
// x = 2^k · m with m ∈ [1, 2), pick the table row i from the top seven
// mantissa bits, whose center c = 1 + (i+0.5)/128 satisfies
// |m/c − 1| ≤ 2^-8, and evaluate
//
//	ln(x) = k·ln2 + ln(c) + ln1p(m·(1/c) − 1)
//
// with a degree-5 Taylor polynomial for ln1p. The result is not
// correctly rounded — the dominant error is the final summation
// rounding at |ln x| up to ~709, plus the ln2 constant's rounding
// scaled by k — but its absolute error is below fastLogErr for every
// normal positive float64, verified exhaustively over the exponent
// range in the package tests.
//
// The error bound stays exact: the encoder quantizes the approximate
// logs under a bound tightened by fastLogErr (see appendLogTransform),
// so the reconstruction is within ln(1+eb) of the *true* logarithm and
// the decoded value within eb·|x| of the original. Decompression
// still uses math.Exp and reads the tightened bound from the stream,
// so streams need no format change and older decoders read them
// unmodified.

// fastLogErr bounds |fastLog(b) − ln(x)| over all normal positive x.
// Budget: ≤ 2 summation roundings at |y| ≤ 710 (2 · 5.7e-14), the ln2
// constant error scaled by |k| ≤ 1074 (4.2e-14), table and polynomial
// terms (< 1e-15). The 1e-12 constant leaves ~6× headroom and is
// asserted against an exponent-range sweep in the tests.
const fastLogErr = 1e-12

var (
	logInvC [128]float64 // 1/c per table row
	logLnC  [128]float64 // ln(c) per table row
)

func init() {
	for i := range logInvC {
		c := 1 + (float64(i)+0.5)/128
		logInvC[i] = 1 / c
		logLnC[i] = math.Log(c)
	}
}

// fastLog returns ln(x) for the IEEE-754 bits b of a positive, finite,
// normal float64, within fastLogErr of the true value.
func fastLog(b uint64) float64 {
	k := int(b>>52) - 1023
	mBits := b & (1<<52 - 1)
	i := mBits >> 45 // top 7 mantissa bits
	m := math.Float64frombits(mBits | 1023<<52)
	r := m*logInvC[i] - 1 // exact subtraction: m·invc ∈ [1−2^-8, 1+2^-8]
	// ln1p(r) = r − r²·(1/2 − r/3 + r²/4 − r³/5) + O(r⁶), r⁶/6 < 6e-16.
	r2 := r * r
	q := 0.5 - r*(1.0/3-r*(0.25-r*0.2))
	return math.Ln2*float64(k) + logLnC[i] + (r - r2*q)
}
