package sz

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/huffman"
	"repro/internal/parallel"
)

// Stats summarizes the pointwise distortion a compression introduced,
// accumulated on the encode path: the quantizer already computes the
// reconstruction the decoder will see (quantStep returns it as the
// next prediction input), so the error of every element is available
// for free — no decode pass is needed to audit a checkpoint.
//
// Errors are reported in the bound's native metric: absolute error for
// Abs and RelRange streams, relative error for PWRel streams
// (Relative tells them apart). For PWRel the per-element relative
// error is a certified upper bound — expm1 of the log-domain
// quantization error plus the fast-log accuracy margin — so
// MaxErr ≤ Bound is guaranteed whenever the compression succeeded,
// matching the decoder's actual reconstruction guarantee. Absolute
// errors additionally feed SumSqAbs so RMSE/PSNR are always in the
// value domain regardless of mode.
type Stats struct {
	// Elements is the number of values audited (= len(x)).
	Elements int
	// MaxErr and SumErr are the max and sum of per-element errors in
	// the bound's native metric (absolute, or relative when Relative).
	MaxErr float64
	SumErr float64
	// SumSqAbs is the sum of squared *absolute* errors (value domain),
	// for RMSE and PSNR.
	SumSqAbs float64
	// MaxAbsValue is max |x_i|, the PSNR peak.
	MaxAbsValue float64
	// Bound is the requested error bound in the same metric as MaxErr:
	// the absolute bound for Abs, the range-derived absolute bound for
	// RelRange, the relative bound for PWRel.
	Bound float64
	// Relative reports whether MaxErr/SumErr/Bound are relative
	// (PWRel) rather than absolute errors.
	Relative bool
}

// addElem folds one element: absV = |x_i|, nativeErr the error in the
// bound's metric, absErr the absolute (value-domain) error.
func (s *Stats) addElem(absV, nativeErr, absErr float64) {
	s.Elements++
	if absV > s.MaxAbsValue {
		s.MaxAbsValue = absV
	}
	if nativeErr > s.MaxErr {
		s.MaxErr = nativeErr
	}
	s.SumErr += nativeErr
	s.SumSqAbs += absErr * absErr
}

// Merge folds another block's stats into s (Bound/Relative must
// agree, which per-block encoding of one stream guarantees).
func (s *Stats) Merge(o Stats) {
	s.Elements += o.Elements
	if o.MaxErr > s.MaxErr {
		s.MaxErr = o.MaxErr
	}
	s.SumErr += o.SumErr
	s.SumSqAbs += o.SumSqAbs
	if o.MaxAbsValue > s.MaxAbsValue {
		s.MaxAbsValue = o.MaxAbsValue
	}
}

// MeanErr returns the mean per-element error in the bound's metric.
func (s Stats) MeanErr() float64 {
	if s.Elements == 0 {
		return 0
	}
	return s.SumErr / float64(s.Elements)
}

// RMSE returns the root-mean-square absolute error.
func (s Stats) RMSE() float64 {
	if s.Elements == 0 {
		return 0
	}
	return math.Sqrt(s.SumSqAbs / float64(s.Elements))
}

// PSNR returns the peak signal-to-noise ratio in dB
// (20·log10(peak/RMSE)); +Inf for exact reconstructions and 0 for an
// all-zero input.
func (s Stats) PSNR() float64 {
	rmse := s.RMSE()
	if rmse == 0 {
		if s.MaxAbsValue == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return 20 * math.Log10(s.MaxAbsValue/rmse)
}

// BoundRatio returns MaxErr/Bound — ≤ 1 means the observed distortion
// stayed inside the requested bound. Zero-bound (exact) streams return 0.
func (s Stats) BoundRatio() float64 {
	if s.Bound == 0 {
		return 0
	}
	return s.MaxErr / s.Bound
}

// CompressWithStats is Compress plus encode-path distortion
// accounting. The output bytes are bitwise identical to Compress on
// the same input and parameters — the stats loops make exactly the
// same predictor and quantizer decisions and emit through the same
// framing code — so an audited save writes the same checkpoint an
// unaudited one would.
func CompressWithStats(x []float64, p Params) ([]byte, Stats, error) {
	p, err := normalizeParams(x, p)
	if err != nil {
		return nil, Stats{}, err
	}
	if len(x) <= p.BlockSize {
		return compressLegacyStats(x, p)
	}
	return compressBlockedStats(x, p)
}

// compressLegacyStats mirrors compressLegacy with accumulation.
func compressLegacyStats(x []float64, p Params) ([]byte, Stats, error) {
	out := []byte(magic)
	out = append(out, byte(p.Mode))
	var st Stats

	switch p.Mode {
	case Abs, RelRange:
		eb := p.ErrorBound
		if p.Mode == RelRange {
			lo, hi := valueRange(x)
			eb = p.ErrorBound * (hi - lo)
			if eb == 0 {
				// Constant data stores the constant exactly: zero error.
				st.Elements = len(x)
				if len(x) > 0 {
					st.MaxAbsValue = math.Abs(x[0])
				}
				return appendConstant(out, x), st, nil
			}
		}
		st.Bound = eb
		out = append(out, kindCore)
		out, err := appendCoreStats(out, x, eb, p.Predictor, p.Intervals, nil, 0, &st)
		return out, st, err

	case PWRel:
		st.Bound = p.ErrorBound
		st.Relative = true
		out = append(out, kindLogTransform)
		out, err := appendLogTransformStats(out, x, p, &st)
		return out, st, err
	}
	return nil, Stats{}, fmt.Errorf("sz: unknown mode %d", p.Mode)
}

// compressBlockedStats mirrors compressBlocked: per-block stats are
// accumulated alongside each block's independent compression and
// merged in block order, so the result is schedule-independent.
func compressBlockedStats(x []float64, p Params) ([]byte, Stats, error) {
	n := len(x)
	blockElems := p.BlockSize
	nBlocks := (n + blockElems - 1) / blockElems

	var total Stats
	ebAbs := p.ErrorBound
	if p.Mode == RelRange {
		lo, hi := valueRange(x)
		ebAbs = p.ErrorBound * (hi - lo)
		if ebAbs == 0 {
			out := []byte(magic)
			out = append(out, byte(p.Mode))
			total.Elements = n
			if n > 0 {
				total.MaxAbsValue = math.Abs(x[0])
			}
			return appendConstant(out, x), total, nil
		}
	}
	if p.Mode == PWRel {
		total.Bound = p.ErrorBound
		total.Relative = true
	} else {
		total.Bound = ebAbs
	}

	blocks := make([][]byte, nBlocks)
	errs := make([]error, nBlocks)
	stats := make([]Stats, nBlocks)
	parallel.For(nBlocks, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			start := b * blockElems
			end := start + blockElems
			if end > n {
				end = n
			}
			chunk := x[start:end]
			buf := parallel.GetBytes(len(chunk) + 64)
			var err error
			switch p.Mode {
			case Abs, RelRange:
				buf = append(buf, kindCore)
				buf, err = appendCoreStats(buf, chunk, ebAbs, p.Predictor, p.Intervals, nil, 0, &stats[b])
			case PWRel:
				buf = append(buf, kindLogTransform)
				buf, err = appendLogTransformStats(buf, chunk, p, &stats[b])
			default:
				err = fmt.Errorf("sz: unknown mode %d", p.Mode)
			}
			blocks[b], errs[b] = buf, err
		}
	})
	for b, err := range errs {
		if err != nil {
			return nil, Stats{}, fmt.Errorf("sz: block %d: %w", b, err)
		}
	}
	for _, st := range stats {
		total.Merge(st)
	}

	totalBytes := 0
	for _, blk := range blocks {
		totalBytes += len(blk)
	}
	out := make([]byte, 0, totalBytes+16+binary.MaxVarintLen64*(nBlocks+3))
	out = append(out, magicBlocked...)
	out = append(out, byte(p.Mode))
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		k := binary.PutUvarint(scratch[:], v)
		out = append(out, scratch[:k]...)
	}
	putUvarint(uint64(n))
	putUvarint(uint64(blockElems))
	putUvarint(uint64(nBlocks))
	for _, blk := range blocks {
		putUvarint(uint64(len(blk)))
	}
	for b, blk := range blocks {
		out = append(out, blk...)
		parallel.PutBytes(blk)
		blocks[b] = nil
	}
	return out, total, nil
}

// appendCoreStats is appendCore with per-element error accumulation.
// The quantization decisions are identical (same quantStep, same
// PredictorAuto resolution) and the payload is emitted through the
// shared emitCore, so the bytes match appendCore exactly; the loop is
// the generic-predictor form rather than the specialized hot loops,
// which only audited saves pay for.
//
// mags is nil on the Abs/RelRange path (x is the value domain; the
// native and absolute errors coincide). On the PWRel path x holds the
// log-domain values, mags the corresponding |value| magnitudes, and
// fcorr the fast-log accuracy margin: the per-element relative error
// is then bounded by expm1(|log error| + fcorr) and the absolute
// error by that times the magnitude.
func appendCoreStats(dst []byte, x []float64, eb float64, pred Predictor, intervals int, mags []float64, fcorr float64, st *Stats) ([]byte, error) {
	if pred == PredictorAuto {
		pred = choosePredictor(x, eb, intervals)
	}
	n := len(x)
	half := intervals / 2
	codes := parallel.GetInts(n)[:n]
	defer parallel.PutInts(codes)
	unpred := parallel.GetFloat64s(0)
	defer func() { parallel.PutFloat64s(unpred) }()
	inv := 1 / (2 * eb)
	twoEB := 2 * eb
	limit := float64(half - 1)
	var prev, prev2 float64
	for i, v := range x {
		p := 2*prev - prev2
		if pred == PredictorLorenzo {
			p = prev
		}
		if i == 0 {
			p = 0
		} else if i == 1 {
			p = prev
		}
		code, r := quantStep(v, p, inv, twoEB, eb, limit, half)
		if code == 0 {
			unpred = append(unpred, v)
		}
		codes[i] = code
		d := v - r
		if d < 0 {
			d = -d
		}
		if mags == nil {
			absV := v
			if absV < 0 {
				absV = -absV
			}
			st.addElem(absV, d, d)
		} else {
			rel := math.Expm1(d + fcorr)
			st.addElem(mags[i], rel, rel*mags[i])
		}
		prev2 = prev
		prev = r
	}
	hstream := parallel.GetBytes(n)
	defer func() { parallel.PutBytes(hstream) }()
	hstream, err := huffman.AppendEncode(hstream, codes, intervals)
	if err != nil {
		return nil, err
	}
	return emitCore(dst, n, eb, pred, intervals, hstream, unpred), nil
}

// appendLogTransformStats is appendLogTransform with accumulation:
// zeros and subnormals reconstruct exactly (zero error), and the
// log-compressed elements carry their magnitudes into the core stats
// loop for the relative→absolute conversion.
func appendLogTransformStats(dst []byte, x []float64, p Params, st *Stats) ([]byte, error) {
	n := len(x)
	nb := (n + 7) / 8
	bitmaps := parallel.GetBytes(3 * nb)[:3*nb]
	defer func() { parallel.PutBytes(bitmaps) }()
	for i := range bitmaps {
		bitmaps[i] = 0
	}
	zeros := bitmaps[:nb]
	signs := bitmaps[nb : 2*nb]
	tiny := bitmaps[2*nb : 3*nb]
	var exact []float64
	logs := parallel.GetFloat64s(n)
	defer func() { parallel.PutFloat64s(logs) }()
	mags := parallel.GetFloat64s(n)
	defer func() { parallel.PutFloat64s(mags) }()

	lnb := math.Log1p(p.ErrorBound)
	lnbEnc := lnb - fastLogErr
	useFast := lnbEnc > 0.5*lnb
	fcorr := fastLogErr
	if !useFast {
		lnbEnc = lnb
		fcorr = 0
	}

	for i, v := range x {
		b := math.Float64bits(v)
		abs := b &^ (1 << 63)
		bit := byte(1) << (uint(i) & 7)
		if abs == 0 {
			zeros[i>>3] |= bit
			st.addElem(0, 0, 0)
			continue
		}
		if b != abs {
			signs[i>>3] |= bit
		}
		if abs < 1<<52 { // biased exponent 0: subnormal, stored exactly
			tiny[i>>3] |= bit
			av := math.Float64frombits(abs)
			exact = append(exact, av)
			st.addElem(av, 0, 0)
			continue
		}
		if useFast {
			logs = append(logs, fastLog(abs))
		} else {
			logs = append(logs, math.Log(math.Float64frombits(abs)))
		}
		mags = append(mags, math.Float64frombits(abs))
	}
	out := dst
	var scratch [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(scratch[:], uint64(n))
	out = append(out, scratch[:k]...)
	out = append(out, bitmaps...)
	k = binary.PutUvarint(scratch[:], uint64(len(exact)))
	out = append(out, scratch[:k]...)
	var b8 [8]byte
	for _, v := range exact {
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(v))
		out = append(out, b8[:]...)
	}
	return appendCoreStats(out, logs, lnbEnc, p.Predictor, p.Intervals, mags, fcorr, st)
}
