package sz

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func statsWorkloads(n int) map[string][]float64 {
	rng := rand.New(rand.NewSource(7))
	smooth := make([]float64, n)
	for i := range smooth {
		smooth[i] = math.Sin(float64(i)/50) + 0.01*rng.Float64()
	}
	rough := make([]float64, n)
	for i := range rough {
		rough[i] = rng.NormFloat64() * math.Exp(10*rng.Float64()-5)
	}
	withZeros := make([]float64, n)
	copy(withZeros, smooth)
	for i := 0; i < n; i += 37 {
		withZeros[i] = 0
	}
	withZeros[n/2] = 5e-310 // subnormal: exact side channel
	constant := make([]float64, n)
	for i := range constant {
		constant[i] = 3.25
	}
	return map[string][]float64{
		"smooth": smooth, "rough": rough, "zeros": withZeros, "constant": constant,
	}
}

// TestCompressWithStatsIdenticalBytes is the audit path's core
// contract: an audited compression writes exactly the bytes an
// unaudited one would, across modes, block layouts, and predictors.
func TestCompressWithStatsIdenticalBytes(t *testing.T) {
	for wname, x := range statsWorkloads(10000) {
		for _, p := range []Params{
			{Mode: Abs, ErrorBound: 1e-6},
			{Mode: Abs, ErrorBound: 1e-6, BlockSize: 1 << 10},
			{Mode: RelRange, ErrorBound: 1e-5},
			{Mode: PWRel, ErrorBound: 1e-4},
			{Mode: PWRel, ErrorBound: 1e-4, BlockSize: 1 << 10},
			{Mode: PWRel, ErrorBound: 1e-13}, // below the fast-log cutoff
			{Mode: Abs, ErrorBound: 1e-3, Predictor: PredictorLinear},
		} {
			want, err := Compress(x, p)
			if err != nil {
				t.Fatalf("%s %+v: Compress: %v", wname, p, err)
			}
			got, st, err := CompressWithStats(x, p)
			if err != nil {
				t.Fatalf("%s %+v: CompressWithStats: %v", wname, p, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s %+v: stats path produced different bytes (%d vs %d)", wname, p, len(got), len(want))
			}
			if st.Elements != len(x) {
				t.Fatalf("%s %+v: audited %d of %d elements", wname, p, st.Elements, len(x))
			}
			if st.MaxErr > st.Bound {
				t.Fatalf("%s %+v: observed max error %g exceeds requested bound %g", wname, p, st.MaxErr, st.Bound)
			}
			if st.Relative != (p.Mode == PWRel) {
				t.Fatalf("%s %+v: Relative = %v", wname, p, st.Relative)
			}
		}
	}
}

// TestStatsBoundObservedError cross-checks the encode-path accumulators
// against a real decode: the claimed max error must bound the true
// pointwise reconstruction error in the bound's own metric.
func TestStatsBoundObservedError(t *testing.T) {
	for wname, x := range statsWorkloads(6000) {
		for _, p := range []Params{
			{Mode: Abs, ErrorBound: 1e-5},
			{Mode: PWRel, ErrorBound: 1e-4},
			{Mode: PWRel, ErrorBound: 1e-4, BlockSize: 1 << 10},
		} {
			blob, st, err := CompressWithStats(x, p)
			if err != nil {
				t.Fatalf("%s: %v", wname, err)
			}
			dec, err := Decompress(blob)
			if err != nil {
				t.Fatalf("%s: decompress: %v", wname, err)
			}
			trueMax := 0.0
			for i := range x {
				e := math.Abs(x[i] - dec[i])
				if p.Mode == PWRel && x[i] != 0 {
					if math.Abs(x[i]) < tinyThreshold {
						e = 0 // exact side channel
					} else {
						e /= math.Abs(x[i])
					}
				}
				if e > trueMax {
					trueMax = e
				}
			}
			// The accumulator is a certified upper bound; allow a whisker
			// of float slack on the comparison direction only.
			if trueMax > st.MaxErr*(1+1e-12)+1e-300 {
				t.Fatalf("%s %+v: true max error %g exceeds claimed %g", wname, p, trueMax, st.MaxErr)
			}
			// Summation rounding can push the mean an ulp past the max
			// when every element carries the same error.
			if st.Elements > 0 && st.MeanErr() > st.MaxErr*(1+1e-12) {
				t.Fatalf("%s: mean %g > max %g", wname, st.MeanErr(), st.MaxErr)
			}
			if ps := st.PSNR(); ps != 0 && !math.IsInf(ps, 1) && ps < 0 {
				t.Fatalf("%s: negative PSNR %g", wname, ps)
			}
		}
	}
}

func TestStatsConstantAndMerge(t *testing.T) {
	x := make([]float64, 100)
	for i := range x {
		x[i] = -2.5
	}
	blob, st, err := CompressWithStats(x, Params{Mode: RelRange, ErrorBound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxErr != 0 || st.Elements != 100 || st.MaxAbsValue != 2.5 {
		t.Fatalf("constant stats: %+v", st)
	}
	dec, err := Decompress(blob)
	if err != nil || len(dec) != 100 || dec[0] != -2.5 {
		t.Fatalf("constant roundtrip: %v %v", dec, err)
	}

	a := Stats{Elements: 2, MaxErr: 1, SumErr: 1.5, SumSqAbs: 2, MaxAbsValue: 3}
	b := Stats{Elements: 3, MaxErr: 2, SumErr: 0.5, SumSqAbs: 1, MaxAbsValue: 1}
	a.Merge(b)
	if a.Elements != 5 || a.MaxErr != 2 || a.SumErr != 2 || a.SumSqAbs != 3 || a.MaxAbsValue != 3 {
		t.Fatalf("merge: %+v", a)
	}
}
