package sz

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/parallel"
	"repro/internal/sparse"
)

// withGOMAXPROCS runs f under the given GOMAXPROCS setting.
func withGOMAXPROCS(t *testing.T, n int, f func()) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(prev)
	f()
}

func blockedInput(n int, seed int64) []float64 {
	x := sparse.SmoothField(n, seed)
	for i := range x {
		x[i] += 2.5
	}
	return x
}

// TestBlockedRoundTripAllModes: the blocked container must respect the
// pointwise error bound of every mode at one worker and at eight —
// identical guarantees regardless of parallelism.
func TestBlockedRoundTripAllModes(t *testing.T) {
	const n = 40000
	const eb = 1e-4
	x := blockedInput(n, 11)
	lo, hi := valueRange(x)
	for _, procs := range []int{1, 8} {
		withGOMAXPROCS(t, procs, func() {
			for _, mode := range []Mode{Abs, RelRange, PWRel} {
				comp, err := Compress(x, Params{Mode: mode, ErrorBound: eb, BlockSize: 4096})
				if err != nil {
					t.Fatalf("procs=%d mode=%v: %v", procs, mode, err)
				}
				if string(comp[:4]) != magicBlocked {
					t.Fatalf("procs=%d mode=%v: expected SZG2 container, got %q", procs, mode, comp[:4])
				}
				if nb, be, ok := blockedStats(comp); !ok || nb != 10 || be != 4096 {
					t.Fatalf("procs=%d mode=%v: blockedStats = (%d,%d,%v), want (10,4096,true)",
						procs, mode, nb, be, ok)
				}
				got, err := Decompress(comp)
				if err != nil {
					t.Fatalf("procs=%d mode=%v decompress: %v", procs, mode, err)
				}
				if len(got) != n {
					t.Fatalf("procs=%d mode=%v: %d values, want %d", procs, mode, len(got), n)
				}
				for i := range x {
					var bound float64
					switch mode {
					case Abs:
						bound = eb
					case RelRange:
						bound = eb * (hi - lo)
					case PWRel:
						bound = eb * math.Abs(x[i])
					}
					if d := math.Abs(x[i] - got[i]); d > bound*(1+1e-10) {
						t.Fatalf("procs=%d mode=%v index %d: error %g > bound %g", procs, mode, i, d, bound)
					}
				}
			}
		})
	}
}

// TestBlockedDeterministicAcrossWorkers: the container bytes must not
// depend on the schedule — serial and heavily parallel compression of
// the same input are byte-identical.
func TestBlockedDeterministicAcrossWorkers(t *testing.T) {
	x := blockedInput(120000, 13)
	p := Params{Mode: PWRel, ErrorBound: 1e-4, BlockSize: 8192}

	prev := parallel.SetWorkers(1)
	serial, err := Compress(x, p)
	parallel.SetWorkers(8)
	parallelOut, err2 := Compress(x, p)
	parallel.SetWorkers(prev)
	if err != nil || err2 != nil {
		t.Fatalf("compress: %v / %v", err, err2)
	}
	if !bytes.Equal(serial, parallelOut) {
		t.Fatal("blocked compression must be schedule-independent, bytes differ")
	}
}

// TestLegacySingleBlockStreams: inputs at most one block long keep the
// legacy SZG1 format byte-for-byte, and explicitly legacy-encoded
// large streams still decompress — old checkpoints stay readable.
func TestLegacySingleBlockStreams(t *testing.T) {
	small := blockedInput(1000, 17)
	comp, err := Compress(small, Params{Mode: Abs, ErrorBound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if string(comp[:4]) != magic {
		t.Fatalf("small input should use legacy SZG1, got %q", comp[:4])
	}

	// A large stream written by the pre-blocked encoder.
	large := blockedInput(100000, 19)
	for _, mode := range []Mode{Abs, RelRange, PWRel} {
		legacy, err := compressLegacy(large, Params{
			Mode: mode, ErrorBound: 1e-4, Intervals: defaultIntervals,
		})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if string(legacy[:4]) != magic {
			t.Fatalf("mode %v: compressLegacy wrote %q", mode, legacy[:4])
		}
		got, err := Decompress(legacy)
		if err != nil {
			t.Fatalf("mode %v: legacy stream no longer decodes: %v", mode, err)
		}
		if len(got) != len(large) {
			t.Fatalf("mode %v: %d values, want %d", mode, len(got), len(large))
		}
		lo, hi := valueRange(large)
		for i := range large {
			var bound float64
			switch mode {
			case Abs:
				bound = 1e-4
			case RelRange:
				bound = 1e-4 * (hi - lo)
			case PWRel:
				bound = 1e-4 * math.Abs(large[i])
			}
			if d := math.Abs(large[i] - got[i]); d > bound*(1+1e-10) {
				t.Fatalf("mode %v index %d: legacy error %g > %g", mode, i, d, bound)
			}
		}
	}
}

// TestBlockedRelRangeUsesGlobalRange: RelRange is defined against the
// global value range; a block-local range on this input (one flat
// block, one wide block) would differ by orders of magnitude.
func TestBlockedRelRangeUsesGlobalRange(t *testing.T) {
	const n = 8192
	x := make([]float64, n)
	for i := range x {
		if i < n/2 {
			x[i] = 1 + 1e-9*float64(i%7) // flat block: local range ~1e-8
		} else {
			x[i] = float64(i) // wide block: local range ~4096
		}
	}
	const eb = 1e-4
	comp, err := Compress(x, Params{Mode: RelRange, ErrorBound: eb, BlockSize: n / 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := valueRange(x)
	bound := eb * (hi - lo)
	for i := range x {
		if d := math.Abs(x[i] - got[i]); d > bound*(1+1e-10) {
			t.Fatalf("index %d: error %g > global bound %g", i, d, bound)
		}
	}
}

// TestBlockedConstantVector: a globally constant vector collapses to
// the tiny legacy constant stream even above the blocking threshold.
func TestBlockedConstantVector(t *testing.T) {
	x := make([]float64, 200000)
	for i := range x {
		x[i] = -7.75
	}
	comp, err := Compress(x, Params{Mode: RelRange, ErrorBound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) > 64 {
		t.Fatalf("constant vector compressed to %d bytes, want a header", len(comp))
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != -7.75 {
			t.Fatalf("index %d: %g, want -7.75 exactly", i, got[i])
		}
	}
}

// TestBlockedRejectsCorruption: truncated or inconsistent SZG2 headers
// must error, never panic or return garbage.
func TestBlockedRejectsCorruption(t *testing.T) {
	x := blockedInput(100000, 23)
	comp, err := Compress(x, Params{Mode: Abs, ErrorBound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if string(comp[:4]) != magicBlocked {
		t.Fatalf("expected blocked stream, got %q", comp[:4])
	}
	for _, cut := range []int{5, 8, len(comp) / 2, len(comp) - 1} {
		if _, err := Decompress(comp[:cut]); err == nil {
			t.Fatalf("truncation at %d silently decoded", cut)
		}
	}
	bad := append([]byte(nil), comp...)
	bad[6] ^= 0xFF // corrupt the element-count varint
	if _, err := Decompress(bad); err == nil {
		t.Fatal("corrupt header silently decoded")
	}
}

// TestCraftedHeadersDoNotAllocate: headers claiming astronomical
// element or block counts must be rejected before sizing any
// allocation from them — a ~25-byte stream must not demand terabytes.
func TestCraftedHeadersDoNotAllocate(t *testing.T) {
	putUvarint := func(dst []byte, v uint64) []byte {
		var b [10]byte
		return append(dst, b[:binary.PutUvarint(b[:], v)]...)
	}
	// SZG2 with n = nBlocks = 2^50, blockElems = 1.
	crafted := append([]byte(magicBlocked), byte(Abs))
	crafted = putUvarint(crafted, 1<<50) // n
	crafted = putUvarint(crafted, 1)     // blockElems
	crafted = putUvarint(crafted, 1<<50) // nBlocks
	if _, err := Decompress(crafted); err == nil {
		t.Fatal("huge blocked header silently accepted")
	}
	// SZG2 with one huge block: n = blockElems = 2^50.
	crafted = append([]byte(magicBlocked), byte(Abs))
	crafted = putUvarint(crafted, 1<<50) // n
	crafted = putUvarint(crafted, 1<<50) // blockElems
	crafted = putUvarint(crafted, 1)     // nBlocks
	crafted = putUvarint(crafted, 4)     // block length
	crafted = append(crafted, kindCore, 0, 0, 0)
	if _, err := Decompress(crafted); err == nil {
		t.Fatal("huge single-block header silently accepted")
	}
	// Legacy SZG1 kindCore with count 2^40 and a tiny payload.
	crafted = append([]byte(magic), byte(Abs), kindCore)
	crafted = putUvarint(crafted, 1<<40) // n
	crafted = append(crafted, make([]byte, 9)...)
	crafted = putUvarint(crafted, 16) // intervals
	crafted = putUvarint(crafted, 0)  // nUnpred
	crafted = putUvarint(crafted, 0)  // hlen
	if _, err := Decompress(crafted); err == nil {
		t.Fatal("huge legacy core header silently accepted")
	}
}

// TestBlockedInvalidParams: the new BlockSize knob validates.
func TestBlockedInvalidParams(t *testing.T) {
	if _, err := Compress([]float64{1, 2}, Params{Mode: Abs, ErrorBound: 1e-4, BlockSize: -1}); err == nil {
		t.Fatal("expected error for negative block size")
	}
}

// TestBlockedNonFiniteDetected: the parallel scan must report the
// smallest offending index deterministically.
func TestBlockedNonFiniteDetected(t *testing.T) {
	x := blockedInput(100000, 29)
	x[70000] = math.Inf(1)
	x[90000] = math.NaN()
	_, err := Compress(x, Params{Mode: Abs, ErrorBound: 1e-4})
	if err == nil {
		t.Fatal("expected error for non-finite input")
	}
	want := "sz: non-finite value at index 70000"
	if err.Error() != want {
		t.Fatalf("error %q, want %q", err, want)
	}
}

// Property: blocked and legacy compression reconstruct within the same
// bound for random inputs, block sizes, and modes, at 1 and 8 procs.
func TestBlockedEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2000 + rng.Intn(30000)
		blockSize := 512 << rng.Intn(4) // 512..4096
		mode := []Mode{Abs, RelRange, PWRel}[rng.Intn(3)]
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(float64(i)/30)*5 + rng.NormFloat64()*0.01 + 3
		}
		eb := math.Pow(10, -2-float64(rng.Intn(5)))
		p := Params{Mode: mode, ErrorBound: eb, BlockSize: blockSize}
		procs := 1 + 7*rng.Intn(2)
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)

		comp, err := Compress(x, p)
		if err != nil {
			t.Logf("seed %d: compress: %v", seed, err)
			return false
		}
		got, err := Decompress(comp)
		if err != nil || len(got) != n {
			t.Logf("seed %d: decompress: %v", seed, err)
			return false
		}
		lo, hi := valueRange(x)
		for i := range x {
			var bound float64
			switch mode {
			case Abs:
				bound = eb
			case RelRange:
				bound = eb * (hi - lo)
			case PWRel:
				bound = eb * math.Abs(x[i])
			}
			if d := math.Abs(x[i] - got[i]); d > bound*(1+1e-10) {
				t.Logf("seed %d: index %d error %g > %g", seed, i, d, bound)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
