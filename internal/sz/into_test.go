package sz

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// intoState builds a smooth, strictly positive state of n elements.
func intoState(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	v := 3.0
	for i := range x {
		v += 0.01 * math.Sin(float64(i)/37) * (1 + 0.1*rng.Float64())
		x[i] = v
	}
	return x
}

// TestDecompressIntoMatchesDecompress: the in-place decode must be
// bitwise identical to the allocating decode for every mode and both
// container formats, even when dst holds stale values on entry.
func TestDecompressIntoMatchesDecompress(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
		p    Params
	}{
		{"legacy-abs", 1000, Params{Mode: Abs, ErrorBound: 1e-4}},
		{"legacy-pwrel", 1000, Params{Mode: PWRel, ErrorBound: 1e-4}},
		{"legacy-relrange", 1000, Params{Mode: RelRange, ErrorBound: 1e-4}},
		{"blocked-abs", 100_000, Params{Mode: Abs, ErrorBound: 1e-4, BlockSize: 8192}},
		{"blocked-pwrel", 100_000, Params{Mode: PWRel, ErrorBound: 1e-4, BlockSize: 8192}},
		{"blocked-relrange", 100_000, Params{Mode: RelRange, ErrorBound: 1e-4, BlockSize: 8192}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			x := intoState(tc.n, 1)
			comp, err := Compress(x, tc.p)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Decompress(comp)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]float64, tc.n)
			for i := range got {
				got[i] = math.NaN() // stale contents must not survive
			}
			if err := DecompressInto(got, comp); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("index %d: into %g != alloc %g", i, got[i], want[i])
				}
			}
		})
	}
}

// TestDecompressIntoConstant covers the degenerate constant stream
// (RelRange over constant data collapses to it).
func TestDecompressIntoConstant(t *testing.T) {
	x := make([]float64, 500)
	for i := range x {
		x[i] = 4.25
	}
	comp, err := Compress(x, Params{Mode: RelRange, ErrorBound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, len(x))
	if err := DecompressInto(got, comp); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 4.25 {
			t.Fatalf("index %d: %g", i, v)
		}
	}
	if err := DecompressInto(make([]float64, 7), comp); err == nil {
		t.Fatal("length mismatch must be rejected for constant streams")
	}
}

// TestDecompressIntoLengthMismatch: a wrong-size destination is an
// error, never a partial decode.
func TestDecompressIntoLengthMismatch(t *testing.T) {
	for _, n := range []int{1000, 100_000} { // legacy and blocked
		x := intoState(n, 2)
		comp, err := Compress(x, Params{Mode: Abs, ErrorBound: 1e-4})
		if err != nil {
			t.Fatal(err)
		}
		if err := DecompressInto(make([]float64, n-1), comp); err == nil {
			t.Fatalf("n=%d: short dst accepted", n)
		}
		if err := DecompressInto(make([]float64, n+1), comp); err == nil {
			t.Fatalf("n=%d: long dst accepted", n)
		}
	}
}

// TestParseBlockLayoutStreaming: the layout parsed from header bytes
// alone (HeaderLenBound-sized prefix, as a streaming reader would
// fetch) must match BlockRanges over the full stream, and each block
// must decode independently via DecodeBlockInto into exactly the
// reconstruction Decompress produces.
func TestParseBlockLayoutStreaming(t *testing.T) {
	x := intoState(200_000, 3)
	comp, err := Compress(x, Params{Mode: PWRel, ErrorBound: 1e-4, BlockSize: 16384})
	if err != nil {
		t.Fatal(err)
	}
	bound, ok := HeaderLenBound(comp[:HeaderPrefixLen])
	if !ok {
		t.Fatal("HeaderLenBound rejected a genuine SZG2 stream")
	}
	if bound > len(comp) {
		bound = len(comp)
	}
	lay, err := ParseBlockLayout(comp[:bound], len(comp))
	if err != nil {
		t.Fatal(err)
	}
	ranges, ok := BlockRanges(comp)
	if !ok {
		t.Fatal("BlockRanges rejected the stream")
	}
	if len(lay.Blocks) != len(ranges) {
		t.Fatalf("%d layout blocks vs %d ranges", len(lay.Blocks), len(ranges))
	}
	for b := range ranges {
		if lay.Blocks[b] != ranges[b] {
			t.Fatalf("block %d span %+v != %+v", b, lay.Blocks[b], ranges[b])
		}
	}
	if lay.N != len(x) {
		t.Fatalf("layout N %d != %d", lay.N, len(x))
	}
	want, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, lay.N)
	for b := range lay.Blocks {
		lo, hi := lay.ElemRange(b)
		if err := DecodeBlockInto(got[lo:hi], comp[lay.Blocks[b].Start:lay.Blocks[b].End]); err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("index %d: block decode %g != %g", i, got[i], want[i])
		}
	}
}

// TestHeaderLenBoundRejectsForeign: legacy streams and junk must not
// be mistaken for SZG2 containers.
func TestHeaderLenBoundRejectsForeign(t *testing.T) {
	x := intoState(100, 4)
	legacy, err := Compress(x, Params{Mode: Abs, ErrorBound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := HeaderLenBound(legacy); ok {
		t.Fatal("legacy SZG1 stream accepted")
	}
	if _, ok := HeaderLenBound([]byte("SZ")); ok {
		t.Fatal("short junk accepted")
	}
	if _, ok := HeaderLenBound(nil); ok {
		t.Fatal("nil accepted")
	}
}

// TestParseBlockLayoutRejectsWrongStreamLen: the allocation guards key
// off the declared stream length, so a header paired with a wrong
// length must fail rather than mis-span blocks.
func TestParseBlockLayoutRejectsWrongStreamLen(t *testing.T) {
	x := intoState(100_000, 5)
	comp, err := Compress(x, Params{Mode: Abs, ErrorBound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseBlockLayout(comp, len(comp)-1); err == nil {
		t.Fatal("short stream length accepted")
	}
	if _, err := ParseBlockLayout(comp, len(comp)+10); err == nil {
		t.Fatal("long stream length accepted")
	}
	if _, err := ParseBlockLayout(comp[:2], len(comp)); err == nil {
		t.Fatal("truncated header accepted")
	}
}

// TestDecodeConstantRejectsCraftedLength: a 16-byte constant payload
// claiming an absurd element count must error, not panic in makeslice.
func TestDecodeConstantRejectsCraftedLength(t *testing.T) {
	crafted := append([]byte(magic), byte(Abs), kindConstant)
	var b16 [16]byte
	binary.LittleEndian.PutUint64(b16[:], 1<<50)
	binary.LittleEndian.PutUint64(b16[8:], math.Float64bits(1.0))
	crafted = append(crafted, b16[:]...)
	if _, err := Decompress(crafted); err == nil {
		t.Fatal("crafted constant length accepted")
	}
}
