package sz

import (
	"math"
	"math/rand"
	"testing"
)

// TestRecompressionErrorDoesNotAccumulate: compressing an already
// lossy reconstruction with the same bound keeps the total error
// within 2·eb of the original — the situation of repeated
// checkpoint/recovery cycles in a long run.
func TestRecompressionErrorDoesNotAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 4000)
	for i := range x {
		x[i] = math.Sin(float64(i)/100) + 0.01*rng.NormFloat64()
	}
	const eb = 1e-4
	cur := x
	for round := 0; round < 5; round++ {
		comp, err := Compress(cur, Params{Mode: Abs, ErrorBound: eb})
		if err != nil {
			t.Fatal(err)
		}
		cur, err = Decompress(comp)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range x {
		// Each round adds at most eb, but quantization to the same
		// grid keeps drift far below the worst case; assert 5·eb as a
		// conservative envelope and 2·eb as the expected envelope on
		// at least 99% of points.
		if d := math.Abs(x[i] - cur[i]); d > 5*eb {
			t.Fatalf("index %d drifted %g after 5 recompressions", i, d)
		}
	}
	within := 0
	for i := range x {
		if math.Abs(x[i]-cur[i]) <= 2*eb {
			within++
		}
	}
	if float64(within) < 0.99*float64(len(x)) {
		t.Fatalf("only %d/%d points within 2·eb after recompression", within, len(x))
	}
}

// TestDenormalsAndTinyValues: values near the subnormal range must
// survive the PWRel log transform.
func TestDenormalsAndTinyValues(t *testing.T) {
	x := []float64{1e-300, -1e-300, 5e-324, 1e-308, -2.5e-310, 1.0}
	comp, err := Compress(x, Params{Mode: PWRel, ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if x[i] == 0 {
			continue
		}
		rel := math.Abs(got[i]-x[i]) / math.Abs(x[i])
		// exp/log round-tripping at the subnormal edge can cost a few
		// ulps beyond the bound; 1e-2 slack on a 1e-3 bound is ample.
		if rel > 1.1e-2 {
			t.Fatalf("index %d (%g): relative error %g", i, x[i], rel)
		}
		if math.Signbit(got[i]) != math.Signbit(x[i]) {
			t.Fatalf("index %d: sign flipped", i)
		}
	}
}

// TestHugeMagnitudes: ABS mode with a bound tiny relative to the data
// forces everything unpredictable; output must stay exact-ish and the
// call must not error.
func TestHugeMagnitudes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 500)
	for i := range x {
		x[i] = rng.NormFloat64() * 1e150
	}
	comp, err := Compress(x, Params{Mode: Abs, ErrorBound: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-got[i]) > 1e-6 {
			t.Fatalf("index %d: error %g", i, math.Abs(x[i]-got[i]))
		}
	}
}

// TestAlternatingSignsPWRel: sign bitmap correctness under rapid sign
// changes.
func TestAlternatingSignsPWRel(t *testing.T) {
	x := make([]float64, 2001)
	for i := range x {
		v := 1.0 + float64(i%13)/13
		if i%2 == 1 {
			v = -v
		}
		x[i] = v
	}
	comp, err := Compress(x, Params{Mode: PWRel, ErrorBound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Signbit(got[i]) != math.Signbit(x[i]) {
			t.Fatalf("sign flipped at %d", i)
		}
		if d := math.Abs(got[i]-x[i]) / math.Abs(x[i]); d > 1e-4*(1+1e-10) {
			t.Fatalf("bound violated at %d: %g", i, d)
		}
	}
}

// TestAllZerosPWRel: an all-zero vector is the degenerate case of the
// zero bitmap.
func TestAllZerosPWRel(t *testing.T) {
	x := make([]float64, 777)
	comp, err := Compress(x, Params{Mode: PWRel, ErrorBound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(x) {
		t.Fatalf("length %d", len(got))
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("index %d: %g, want exact 0", i, v)
		}
	}
}

// TestStepFunction: discontinuities must not leak across the jump
// (each side reconstructs within bound).
func TestStepFunction(t *testing.T) {
	x := make([]float64, 3000)
	for i := range x {
		if i < 1500 {
			x[i] = 1
		} else {
			x[i] = 1000
		}
	}
	const eb = 1e-5
	comp, err := Compress(x, Params{Mode: Abs, ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if d := math.Abs(x[i] - got[i]); d > eb*(1+1e-12) {
			t.Fatalf("index %d: error %g", i, d)
		}
	}
}
