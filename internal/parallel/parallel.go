// Package parallel provides the shared data-parallel substrate for the
// hot paths of this repository: a bounded range-splitting For loop used
// by the blocked SZ compressor and the CSR matrix kernels, and reusable
// scratch-buffer pools that keep the checkpoint encode path free of
// per-call allocations.
//
// The design is deliberately deadlock-free: For spawns at most
// Workers() short-lived goroutines per call and the caller's goroutine
// participates in the work, so nested parallel sections (e.g. a
// simulated MPI rank calling a parallel MulVec) can never starve a
// shared queue. Chunks are handed out by an atomic counter, which load-
// balances uneven work (rows with unequal nonzero counts, blocks with
// unequal entropy) without any locking in the steady state.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerOverride holds a positive worker-count override set with
// SetWorkers, or 0 to track GOMAXPROCS.
var workerOverride atomic.Int64

// Workers returns the number of goroutines a parallel section may use:
// the SetWorkers override if one is set, otherwise GOMAXPROCS.
func Workers() int {
	if w := int(workerOverride.Load()); w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the worker count for subsequent parallel
// sections and returns the previous override (0 means "track
// GOMAXPROCS"). n <= 0 clears the override. It is the package's single
// tuning knob: benchmarks use SetWorkers(1) to measure serial
// baselines, and tests use a count above GOMAXPROCS to force
// interleaving on small machines.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(workerOverride.Swap(int64(n)))
}

// For splits the index range [0, n) into chunks of about grain indices
// and calls fn(lo, hi) once per chunk, using up to Workers() goroutines
// (including the calling one). fn must be safe to call concurrently on
// disjoint ranges. For returns when every chunk has completed; a panic
// in any chunk is re-raised on the calling goroutine after the
// remaining workers drain.
//
// When the range fits in one chunk or only one worker is available the
// loop runs inline with zero scheduling overhead, so callers can use
// For unconditionally and tune the serial cutoff purely through grain.
func For(n, grain int, fn func(lo, hi int)) {
	ForBounded(n, grain, 0, fn)
}

// ForBounded is For with an explicit cap on the goroutine count:
// at most workers goroutines (including the calling one) execute fn.
// workers <= 0 means Workers(). Unlike For, the cap may exceed
// GOMAXPROCS — the sharded checkpoint writer uses that for I/O-bound
// storage fan-out, where goroutines spend their time blocked in write
// syscalls rather than on a core.
func ForBounded(n, grain, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	w := workers
	if w <= 0 {
		w = Workers()
	}
	if w > chunks {
		w = chunks
	}
	if w <= 1 || chunks == 1 {
		fn(0, n)
		return
	}

	var next atomic.Int64
	var panicOnce sync.Once
	var panicked atomic.Bool
	var panicVal any
	body := func() {
		for {
			c := int(next.Add(1)) - 1
			if c >= chunks || panicked.Load() {
				return
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						panicOnce.Do(func() {
							panicVal = r
							panicked.Store(true)
						})
					}
				}()
				fn(lo, hi)
			}()
		}
	}

	var wg sync.WaitGroup
	wg.Add(w - 1)
	for i := 0; i < w-1; i++ {
		go func() {
			defer wg.Done()
			body()
		}()
	}
	body() // the caller works too
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}

// Grain returns a chunk size that splits n indices into roughly
// chunksPerWorker chunks per worker (for load balancing of uneven
// work), but never below minGrain (so tiny inputs stay serial and
// per-chunk overhead stays amortized).
func Grain(n, minGrain, chunksPerWorker int) int {
	if chunksPerWorker < 1 {
		chunksPerWorker = 1
	}
	g := n / (Workers() * chunksPerWorker)
	if g < minGrain {
		g = minGrain
	}
	return g
}

// ---- Scratch-buffer pools ---------------------------------------------------
//
// The checkpoint encode path (fti.encodeSnapshot → sz.Compress →
// huffman encoding) used to grow fresh byte/int/float64 slices on
// every checkpoint. These pools recycle those slices across calls;
// Get* returns a zero-length slice with at least the requested
// capacity, and Put* recycles it. Contents are never zeroed — callers
// must treat returned slices as uninitialized beyond their own writes.

var (
	bytePool    = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}
	intPool     = sync.Pool{New: func() any { s := make([]int, 0, 1024); return &s }}
	float64Pool = sync.Pool{New: func() any { s := make([]float64, 0, 1024); return &s }}
)

// GetBytes returns a zero-length byte slice with capacity ≥ n.
func GetBytes(n int) []byte {
	b := *bytePool.Get().(*[]byte)
	if cap(b) < n {
		b = make([]byte, 0, n)
	}
	return b[:0]
}

// PutBytes recycles a slice obtained from GetBytes. The caller must
// not use b afterwards.
func PutBytes(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	bytePool.Put(&b)
}

// GetInts returns a zero-length int slice with capacity ≥ n.
func GetInts(n int) []int {
	s := *intPool.Get().(*[]int)
	if cap(s) < n {
		s = make([]int, 0, n)
	}
	return s[:0]
}

// PutInts recycles a slice obtained from GetInts.
func PutInts(s []int) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	intPool.Put(&s)
}

// GetFloat64s returns a zero-length float64 slice with capacity ≥ n.
func GetFloat64s(n int) []float64 {
	s := *float64Pool.Get().(*[]float64)
	if cap(s) < n {
		s = make([]float64, 0, n)
	}
	return s[:0]
}

// PutFloat64s recycles a slice obtained from GetFloat64s.
func PutFloat64s(s []float64) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	float64Pool.Put(&s)
}
