package parallel

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10000)
		grain := 1 + rng.Intn(600)
		hits := make([]int32, n)
		For(n, grain, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Errorf("index %d visited %d times (n=%d grain=%d)", i, h, n, grain)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForEmptyAndNegative(t *testing.T) {
	called := false
	For(0, 10, func(lo, hi int) { called = true })
	For(-5, 10, func(lo, hi int) { called = true })
	if called {
		t.Fatal("For must not invoke fn for empty ranges")
	}
}

func TestForSingleChunkRunsInline(t *testing.T) {
	var gid uint64
	For(100, 1000, func(lo, hi int) {
		if lo != 0 || hi != 100 {
			t.Fatalf("expected one chunk [0,100), got [%d,%d)", lo, hi)
		}
		gid++
	})
	if gid != 1 {
		t.Fatalf("fn called %d times, want 1", gid)
	}
}

func TestForPanicPropagates(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("expected panic \"boom\", got %v", r)
		}
	}()
	For(1000, 10, func(lo, hi int) {
		if lo == 500 {
			panic("boom")
		}
	})
}

func TestSetWorkers(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers = %d after SetWorkers(3)", got)
	}
	if got := SetWorkers(0); got != 3 {
		t.Fatalf("SetWorkers returned %d, want previous value 3", got)
	}
	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers = %d after clearing override, want GOMAXPROCS %d",
			got, runtime.GOMAXPROCS(0))
	}
}

func TestForOversubscribed(t *testing.T) {
	// More workers than chunks and than GOMAXPROCS: still exact coverage.
	prev := SetWorkers(16)
	defer SetWorkers(prev)
	var sum atomic.Int64
	For(1<<16, 1024, func(lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		sum.Add(s)
	})
	want := int64(1<<16) * (1<<16 - 1) / 2
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestGrain(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	if g := Grain(1<<20, 256, 4); g != 1<<20/16 {
		t.Fatalf("Grain = %d, want %d", g, 1<<20/16)
	}
	if g := Grain(100, 256, 4); g != 256 {
		t.Fatalf("Grain must respect minGrain: got %d", g)
	}
}

func TestPoolsRoundTrip(t *testing.T) {
	b := GetBytes(100)
	if len(b) != 0 || cap(b) < 100 {
		t.Fatalf("GetBytes: len=%d cap=%d", len(b), cap(b))
	}
	b = append(b, 1, 2, 3)
	PutBytes(b)
	b2 := GetBytes(10)
	if len(b2) != 0 {
		t.Fatalf("recycled buffer must have zero length, got %d", len(b2))
	}

	s := GetInts(50)
	if len(s) != 0 || cap(s) < 50 {
		t.Fatalf("GetInts: len=%d cap=%d", len(s), cap(s))
	}
	PutInts(s)

	f := GetFloat64s(70)
	if len(f) != 0 || cap(f) < 70 {
		t.Fatalf("GetFloat64s: len=%d cap=%d", len(f), cap(f))
	}
	PutFloat64s(f)

	// Zero-capacity puts must be no-ops, not pool corruption.
	PutBytes(nil)
	PutInts(nil)
	PutFloat64s(nil)
}

func TestForBoundedCapsGoroutines(t *testing.T) {
	// Force the default worker count high so the explicit bound is the
	// binding constraint.
	prev := SetWorkers(16)
	defer SetWorkers(prev)

	var active, peak atomic.Int32
	ForBounded(64, 1, 3, func(lo, hi int) {
		cur := active.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		runtime.Gosched()
		active.Add(-1)
	})
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent workers, bound was 3", p)
	}
}

func TestForBoundedCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		n := 5000
		hits := make([]int32, n)
		ForBounded(n, 13, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForBoundedMayExceedGOMAXPROCS(t *testing.T) {
	// I/O-bound fan-out: the bound is taken literally even above the
	// CPU-tracking default, so storage writers can oversubscribe.
	prev := SetWorkers(0)
	defer SetWorkers(prev)
	want := runtime.GOMAXPROCS(0) * 4
	var distinct atomic.Int32
	start := make(chan struct{})
	done := make(chan struct{})
	go func() {
		ForBounded(want, 1, want, func(lo, hi int) {
			if distinct.Add(1) == int32(want) {
				close(start) // all workers alive simultaneously
			}
			<-start
		})
		close(done)
	}()
	<-done
	if got := distinct.Load(); got != int32(want) {
		t.Fatalf("launched %d workers, want %d", got, want)
	}
}
