// Package mpi provides a small message-passing runtime that stands in
// for MPI in this reproduction. Ranks are goroutines inside one
// process; the package offers the collective and point-to-point
// semantics the solvers need (Barrier, Allreduce, Bcast, Allgatherv,
// Send/Recv), so the distributed numerical code paths are exercised
// for real even though no network is involved.
//
// The paper ran PETSc over MPI on 2,048 physical cores. The numerics
// of a Krylov or stationary solver are independent of the transport:
// what matters is that reductions combine partial dot products in the
// same way and that halo exchange delivers the right ghost values.
// This runtime provides exactly those operations.
package mpi

import (
	"fmt"
	"sync"
)

// World owns the shared state for one group of ranks. Create one with
// NewWorld and hand each rank its Comm via Run.
type World struct {
	size int
	coll *collective
	mail []chan msg // mail[to*size+from]: ordered per-pair channels
}

type msg struct {
	tag  int
	data []float64
}

// NewWorld creates a World with the given number of ranks.
// Mailboxes are buffered so that simple neighbor exchanges
// (send-then-receive on both sides) do not deadlock.
func NewWorld(size int) *World {
	if size <= 0 {
		panic(fmt.Sprintf("mpi: world size must be positive, got %d", size))
	}
	w := &World{
		size: size,
		coll: newCollective(size),
		mail: make([]chan msg, size*size),
	}
	for i := range w.mail {
		w.mail[i] = make(chan msg, 4)
	}
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Comm is a per-rank communicator handle. It is not safe to share one
// Comm between goroutines; each rank goroutine owns its Comm.
type Comm struct {
	w    *World
	rank int
}

// Comm returns the communicator for the given rank.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, w.size))
	}
	return &Comm{w: w, rank: rank}
}

// Rank returns this communicator's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.w.size }

// Run spawns size ranks, each executing fn with its own Comm, and
// waits for all of them. The first non-nil error (or panic, converted
// to an error) is returned. It is the moral equivalent of mpiexec.
func Run(size int, fn func(*Comm) error) error {
	w := NewWorld(size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	wg.Add(size)
	for r := 0; r < size; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
				}
			}()
			errs[rank] = fn(w.Comm(rank))
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// collective implements generation-counted collectives. All ranks must
// invoke collectives in the same order (the usual MPI contract).
type collective struct {
	mu     sync.Mutex
	cond   *sync.Cond
	size   int
	gen    uint64
	count  int
	accF   float64
	accV   []float64
	result []float64
	resF   float64
}

func newCollective(size int) *collective {
	c := &collective{size: size}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// phase runs one generation of a collective. contribute is called with
// the lock held for every rank; finish is called with the lock held by
// the last rank to arrive, before the generation advances. read is
// called with the lock held after the generation completes.
func (c *collective) phase(contribute, finish, read func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	myGen := c.gen
	contribute()
	c.count++
	if c.count == c.size {
		if finish != nil {
			finish()
		}
		c.count = 0
		c.gen++
		c.cond.Broadcast()
	} else {
		for c.gen == myGen {
			c.cond.Wait()
		}
	}
	if read != nil {
		read()
	}
}

// Barrier blocks until every rank has entered the barrier.
func (c *Comm) Barrier() {
	c.w.coll.phase(func() {}, nil, nil)
}

// AllreduceSum returns the sum of x over all ranks. This is the kernel
// behind distributed dot products and norms.
func (c *Comm) AllreduceSum(x float64) float64 {
	cl := c.w.coll
	var out float64
	cl.phase(
		func() {
			if cl.count == 0 {
				cl.accF = 0
			}
			cl.accF += x
		},
		func() { cl.resF = cl.accF },
		func() { out = cl.resF },
	)
	return out
}

// AllreduceMax returns the maximum of x over all ranks.
func (c *Comm) AllreduceMax(x float64) float64 {
	cl := c.w.coll
	var out float64
	cl.phase(
		func() {
			if cl.count == 0 {
				cl.accF = x
			} else if x > cl.accF {
				cl.accF = x
			}
		},
		func() { cl.resF = cl.accF },
		func() { out = cl.resF },
	)
	return out
}

// AllreduceMin returns the minimum of x over all ranks.
func (c *Comm) AllreduceMin(x float64) float64 {
	cl := c.w.coll
	var out float64
	cl.phase(
		func() {
			if cl.count == 0 {
				cl.accF = x
			} else if x < cl.accF {
				cl.accF = x
			}
		},
		func() { cl.resF = cl.accF },
		func() { out = cl.resF },
	)
	return out
}

// AllreduceSumVec element-wise sums x across ranks and writes the
// result back into x on every rank. All ranks must pass equal lengths.
func (c *Comm) AllreduceSumVec(x []float64) {
	cl := c.w.coll
	cl.phase(
		func() {
			if cl.count == 0 {
				if cap(cl.accV) < len(x) {
					cl.accV = make([]float64, len(x))
				}
				cl.accV = cl.accV[:len(x)]
				for i := range cl.accV {
					cl.accV[i] = 0
				}
			}
			if len(x) != len(cl.accV) {
				panic("mpi: AllreduceSumVec length mismatch across ranks")
			}
			for i, v := range x {
				cl.accV[i] += v
			}
		},
		func() {
			cl.result = append(cl.result[:0], cl.accV...)
		},
		func() {
			copy(x, cl.result)
		},
	)
}

// Bcast broadcasts x from root to all ranks; every rank passes a slice
// of the same length and receives root's contents.
func (c *Comm) Bcast(root int, x []float64) {
	cl := c.w.coll
	cl.phase(
		func() {
			if c.rank == root {
				cl.result = append(cl.result[:0], x...)
			}
		},
		nil,
		func() {
			if c.rank != root {
				if len(x) != len(cl.result) {
					panic("mpi: Bcast length mismatch")
				}
				copy(x, cl.result)
			}
		},
	)
}

// Allgatherv concatenates each rank's local slice in rank order and
// returns the concatenation on every rank. counts[r] must equal
// len(local) on rank r and be the same array on all ranks.
func (c *Comm) Allgatherv(local []float64, counts []int) []float64 {
	if len(counts) != c.w.size {
		panic("mpi: Allgatherv counts must have one entry per rank")
	}
	if counts[c.rank] != len(local) {
		panic(fmt.Sprintf("mpi: Allgatherv rank %d contributed %d values, counts says %d",
			c.rank, len(local), counts[c.rank]))
	}
	total := 0
	offset := 0
	for r, n := range counts {
		if r < c.rank {
			offset += n
		}
		total += n
	}
	cl := c.w.coll
	out := make([]float64, total)
	cl.phase(
		func() {
			if cl.count == 0 {
				if cap(cl.accV) < total {
					cl.accV = make([]float64, total)
				}
				cl.accV = cl.accV[:total]
			}
			copy(cl.accV[offset:offset+len(local)], local)
		},
		func() {
			cl.result = append(cl.result[:0], cl.accV...)
		},
		func() {
			copy(out, cl.result)
		},
	)
	return out
}

// Send delivers data to rank `to` with the given tag. Per-pair
// ordering is preserved. The data slice is copied, so the caller may
// reuse it immediately.
func (c *Comm) Send(to, tag int, data []float64) {
	if to < 0 || to >= c.w.size {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d", to))
	}
	buf := make([]float64, len(data))
	copy(buf, data)
	c.w.mail[to*c.w.size+c.rank] <- msg{tag: tag, data: buf}
}

// Recv receives the next message from rank `from`, asserting the tag
// matches. It returns the payload.
func (c *Comm) Recv(from, tag int) []float64 {
	if from < 0 || from >= c.w.size {
		panic(fmt.Sprintf("mpi: Recv from invalid rank %d", from))
	}
	m := <-c.w.mail[c.rank*c.w.size+from]
	if m.tag != tag {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d", c.rank, tag, from, m.tag))
	}
	return m.data
}

// SendRecv exchanges data with a partner rank without deadlocking:
// lower rank sends first. Both sides must call it with matching tags.
func (c *Comm) SendRecv(partner, tag int, send []float64) []float64 {
	if c.rank == partner {
		out := make([]float64, len(send))
		copy(out, send)
		return out
	}
	if c.rank < partner {
		c.Send(partner, tag, send)
		return c.Recv(partner, tag)
	}
	recv := c.Recv(partner, tag)
	c.Send(partner, tag, send)
	return recv
}
