package mpi

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestRunAllRanksExecute(t *testing.T) {
	var n int64
	err := Run(8, func(c *Comm) error {
		atomic.AddInt64(&n, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("ran %d ranks, want 8", n)
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 2 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error from panicking rank")
	}
}

func TestAllreduceSum(t *testing.T) {
	err := Run(16, func(c *Comm) error {
		got := c.AllreduceSum(float64(c.Rank()))
		want := float64(16 * 15 / 2)
		if got != want {
			t.Errorf("rank %d: AllreduceSum = %v, want %v", c.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSumRepeated(t *testing.T) {
	// Successive collectives must not bleed state between generations.
	err := Run(5, func(c *Comm) error {
		for iter := 0; iter < 50; iter++ {
			got := c.AllreduceSum(float64(iter))
			if got != float64(5*iter) {
				t.Errorf("iter %d: got %v, want %v", iter, got, float64(5*iter))
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	err := Run(7, func(c *Comm) error {
		max := c.AllreduceMax(float64(c.Rank()))
		if max != 6 {
			t.Errorf("AllreduceMax = %v, want 6", max)
		}
		min := c.AllreduceMin(float64(c.Rank()))
		if min != 0 {
			t.Errorf("AllreduceMin = %v, want 0", min)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMaxNegative(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		got := c.AllreduceMax(-float64(c.Rank()) - 1)
		if got != -1 {
			t.Errorf("AllreduceMax = %v, want -1", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSumVec(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		x := []float64{float64(c.Rank()), 1}
		c.AllreduceSumVec(x)
		if x[0] != 6 || x[1] != 4 {
			t.Errorf("rank %d: AllreduceSumVec = %v, want [6 4]", c.Rank(), x)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	err := Run(6, func(c *Comm) error {
		x := make([]float64, 3)
		if c.Rank() == 2 {
			x[0], x[1], x[2] = 7, 8, 9
		}
		c.Bcast(2, x)
		if x[0] != 7 || x[1] != 8 || x[2] != 9 {
			t.Errorf("rank %d: Bcast = %v", c.Rank(), x)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherv(t *testing.T) {
	counts := []int{1, 2, 3}
	err := Run(3, func(c *Comm) error {
		local := make([]float64, counts[c.Rank()])
		for i := range local {
			local[i] = float64(c.Rank()*10 + i)
		}
		all := c.Allgatherv(local, counts)
		want := []float64{0, 10, 11, 20, 21, 22}
		if len(all) != len(want) {
			t.Errorf("rank %d: len = %d, want %d", c.Rank(), len(all), len(want))
			return nil
		}
		for i := range want {
			if all[i] != want[i] {
				t.Errorf("rank %d: Allgatherv = %v, want %v", c.Rank(), all, want)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvOrdering(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1})
			c.Send(1, 0, []float64{2})
		} else {
			a := c.Recv(0, 0)
			b := c.Recv(0, 0)
			if a[0] != 1 || b[0] != 2 {
				t.Errorf("per-pair ordering violated: %v %v", a, b)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesData(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, 0, buf)
			buf[0] = -1 // must not affect the delivered message
		} else {
			got := c.Recv(0, 0)
			if got[0] != 42 {
				t.Errorf("Recv = %v, want 42 (Send must copy)", got[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvExchange(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		partner := c.Rank() ^ 1 // pair 0<->1, 2<->3
		got := c.SendRecv(partner, 5, []float64{float64(c.Rank())})
		if got[0] != float64(partner) {
			t.Errorf("rank %d: SendRecv = %v, want %d", c.Rank(), got[0], partner)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvSelf(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		got := c.SendRecv(0, 0, []float64{3})
		if got[0] != 3 {
			t.Errorf("self SendRecv = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierManyRanks(t *testing.T) {
	// A larger world exercising repeated barriers; a bug in the
	// generation logic shows up as a hang (caught by test timeout) or
	// as a torn counter.
	var phase int64
	err := Run(64, func(c *Comm) error {
		for i := 0; i < 10; i++ {
			atomic.AddInt64(&phase, 1)
			c.Barrier()
			if v := atomic.LoadInt64(&phase); v%64 != 0 {
				t.Errorf("barrier leaked: phase=%d after barrier %d", v, i)
				return nil
			}
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistributedDotMatchesSequential(t *testing.T) {
	// The canonical use: each rank owns a chunk; the allreduced partial
	// dot products must equal the sequential dot product.
	n := 1000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i))
		y[i] = math.Cos(float64(i) / 3)
	}
	var seq float64
	for i := range x {
		seq += x[i] * y[i]
	}
	for _, p := range []int{1, 3, 8} {
		err := Run(p, func(c *Comm) error {
			lo := c.Rank() * n / p
			hi := (c.Rank() + 1) * n / p
			var part float64
			for i := lo; i < hi; i++ {
				part += x[i] * y[i]
			}
			got := c.AllreduceSum(part)
			if math.Abs(got-seq) > 1e-9*math.Abs(seq) {
				t.Errorf("p=%d rank %d: dot=%v, want %v", p, c.Rank(), got, seq)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
