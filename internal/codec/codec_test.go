package codec

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/lossless"
	"repro/internal/zfp"
)

// testField builds a deterministic, smooth-but-noisy field like solver
// state: large-scale oscillation plus small noise.
func testField(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = 2.5 + math.Sin(float64(i)/97.0) + 1e-3*rng.NormFloat64()
	}
	return x
}

// allParams returns one Params per codec with a small block size so
// modest inputs exercise the container.
func allParams(blockElems int) []Params {
	return []Params{
		{Codec: ZFP, Bound: 1e-6, BlockElems: blockElems},
		{Codec: FPC, BlockElems: blockElems},
		{Codec: Flate, BlockElems: blockElems},
	}
}

func TestRoundTripBlockedAndLegacy(t *testing.T) {
	for _, n := range []int{1, 31, 100, 4096, 4097, 14000} {
		x := testField(n, int64(n))
		for _, p := range allParams(4096) {
			enc, err := Compress(x, p)
			if err != nil {
				t.Fatalf("%v n=%d: compress: %v", p.Codec, n, err)
			}
			wantBlocked := n > 4096
			if IsBlocked(enc) != wantBlocked {
				t.Fatalf("%v n=%d: blocked=%v, want %v", p.Codec, n, IsBlocked(enc), wantBlocked)
			}
			var dec []float64
			if IsBlocked(enc) {
				dec, err = Decompress(enc)
			} else {
				switch p.Codec {
				case ZFP:
					dec, err = zfp.Decompress(enc)
				case FPC:
					dec, err = lossless.FPC{}.Decompress(enc)
				default:
					dec, err = lossless.Flate{}.Decompress(enc)
				}
			}
			if err != nil {
				t.Fatalf("%v n=%d: decompress: %v", p.Codec, n, err)
			}
			if len(dec) != n {
				t.Fatalf("%v n=%d: got %d values", p.Codec, n, len(dec))
			}
			for i := range x {
				if p.Codec == ZFP {
					if d := math.Abs(dec[i] - x[i]); d > p.Bound*(1+1e-12) {
						t.Fatalf("%v n=%d: |err|=%g exceeds bound at %d", p.Codec, n, d, i)
					}
				} else if dec[i] != x[i] {
					t.Fatalf("%v n=%d: lossless mismatch at %d: %v != %v", p.Codec, n, i, dec[i], x[i])
				}
			}
			// DecompressInto must agree bitwise with Decompress.
			if IsBlocked(enc) {
				into := make([]float64, n)
				if err := DecompressInto(into, enc); err != nil {
					t.Fatalf("%v n=%d: DecompressInto: %v", p.Codec, n, err)
				}
				for i := range dec {
					if math.Float64bits(into[i]) != math.Float64bits(dec[i]) {
						t.Fatalf("%v n=%d: Into differs at %d", p.Codec, n, i)
					}
				}
			}
		}
	}
}

// TestBlockedMatchesLegacyBitwise checks that the blocked container
// reconstructs exactly the bits the legacy stream does: trivially true
// for the lossless codecs, and true for ZFP because container blocks
// are forced to transform-block multiples.
func TestBlockedMatchesLegacyBitwise(t *testing.T) {
	n := 10000
	x := testField(n, 7)
	for _, p := range allParams(2048) {
		legacyP := p
		legacyP.BlockElems = n + 1 // force legacy
		legacy, err := Compress(x, legacyP)
		if err != nil {
			t.Fatalf("%v: legacy compress: %v", p.Codec, err)
		}
		blocked, err := Compress(x, p)
		if err != nil {
			t.Fatalf("%v: blocked compress: %v", p.Codec, err)
		}
		if !IsBlocked(blocked) || IsBlocked(legacy) {
			t.Fatalf("%v: container selection wrong", p.Codec)
		}
		var legacyDec []float64
		switch p.Codec {
		case ZFP:
			legacyDec, err = zfp.Decompress(legacy)
		case FPC:
			legacyDec, err = lossless.FPC{}.Decompress(legacy)
		default:
			legacyDec, err = lossless.Flate{}.Decompress(legacy)
		}
		if err != nil {
			t.Fatalf("%v: legacy decompress: %v", p.Codec, err)
		}
		blockedDec, err := Decompress(blocked)
		if err != nil {
			t.Fatalf("%v: blocked decompress: %v", p.Codec, err)
		}
		for i := range legacyDec {
			if math.Float64bits(legacyDec[i]) != math.Float64bits(blockedDec[i]) {
				t.Fatalf("%v: reconstruction differs at %d: %x != %x",
					p.Codec, i, math.Float64bits(legacyDec[i]), math.Float64bits(blockedDec[i]))
			}
		}
	}
}

// TestZFPBlockElemsRounding verifies the transform-alignment rule.
func TestZFPBlockElemsRounding(t *testing.T) {
	p, err := Params{Codec: ZFP, Bound: 1e-4, BlockElems: 1000}.sanitize()
	if err != nil {
		t.Fatal(err)
	}
	if p.BlockElems%zfp.BlockSize != 0 {
		t.Fatalf("BlockElems %d not a transform-block multiple", p.BlockElems)
	}
	if p.BlockElems < 1000 {
		t.Fatalf("BlockElems rounded down: %d", p.BlockElems)
	}
}

func TestBlockLayoutAndPerBlockDecode(t *testing.T) {
	n := 9000
	x := testField(n, 3)
	for _, p := range allParams(2048) {
		enc, err := Compress(x, p)
		if err != nil {
			t.Fatal(err)
		}
		lay, err := ParseBlockLayout(enc, len(enc))
		if err != nil {
			t.Fatalf("%v: ParseBlockLayout: %v", p.Codec, err)
		}
		if lay.N != n {
			t.Fatalf("%v: layout N=%d", p.Codec, lay.N)
		}
		full, err := Decompress(enc)
		if err != nil {
			t.Fatal(err)
		}
		for b, span := range lay.Blocks {
			lo, hi := lay.ElemRange(b)
			dst := make([]float64, hi-lo)
			if err := DecodeBlockInto(dst, enc[span.Start:span.End]); err != nil {
				t.Fatalf("%v: block %d: %v", p.Codec, b, err)
			}
			for i := range dst {
				if math.Float64bits(dst[i]) != math.Float64bits(full[lo+i]) {
					t.Fatalf("%v: block %d differs at %d", p.Codec, b, i)
				}
			}
		}
		// HeaderLenBound must cover the real header (first block start).
		bound, ok := HeaderLenBound(enc[:HeaderPrefixLen])
		if !ok || bound < lay.Blocks[0].Start {
			t.Fatalf("%v: HeaderLenBound=%d ok=%v, header ends at %d", p.Codec, bound, ok, lay.Blocks[0].Start)
		}
		// BlockRanges must match the layout spans.
		ranges, ok := BlockRanges(enc)
		if !ok || len(ranges) != len(lay.Blocks) {
			t.Fatalf("%v: BlockRanges mismatch", p.Codec)
		}
		for b := range ranges {
			if ranges[b] != lay.Blocks[b] {
				t.Fatalf("%v: range %d mismatch", p.Codec, b)
			}
		}
	}
}

func TestSplitBlocksAligned(t *testing.T) {
	n := 20000
	x := testField(n, 11)
	enc, err := Compress(x, Params{Codec: FPC, BlockElems: 1024})
	if err != nil {
		t.Fatal(err)
	}
	ranges, _ := BlockRanges(enc)
	ends := map[int]bool{}
	for _, r := range ranges {
		ends[r.End] = true
	}
	for _, parts := range [][]Range{SplitBlocks(enc, 3), SplitBlocks(enc, 7), SplitBlocks(enc, 1000)} {
		pos := 0
		for i, part := range parts {
			if part.Start != pos {
				t.Fatalf("part %d starts at %d, want %d", i, part.Start, pos)
			}
			if i < len(parts)-1 && !ends[part.End] {
				t.Fatalf("part %d cut at %d is not a block boundary", i, part.End)
			}
			pos = part.End
		}
		if pos != len(enc) {
			t.Fatalf("parts cover %d of %d bytes", pos, len(enc))
		}
	}
	// Legacy streams split into a single span.
	legacy, err := lossless.FPC{}.Compress(x[:100])
	if err != nil {
		t.Fatal(err)
	}
	if parts := SplitBlocks(legacy, 4); len(parts) != 1 || parts[0] != (Range{Start: 0, End: len(legacy)}) {
		t.Fatalf("legacy split: %v", parts)
	}
}

// mangleHeader re-encodes a BLK1 header with the given fields, keeping
// the original payload bytes, to craft inconsistent streams.
func mangleHeader(t *testing.T, enc []byte, n, blockElems, nBlocks uint64, lens []uint64, payload []byte) []byte {
	t.Helper()
	out := append([]byte(nil), enc[:5]...)
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		k := binary.PutUvarint(scratch[:], v)
		out = append(out, scratch[:k]...)
	}
	put(n)
	put(blockElems)
	put(nBlocks)
	for _, l := range lens {
		put(l)
	}
	return append(out, payload...)
}

// TestCraftedHeaderRobustness is the PR-4 hardening contract for the
// new container: corrupt or adversarial headers must be rejected by
// the parser, before any output allocation happens.
func TestCraftedHeaderRobustness(t *testing.T) {
	x := testField(8192, 5)
	enc, err := Compress(x, Params{Codec: FPC, BlockElems: 2048})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := ParseBlockLayout(enc, len(enc))
	if err != nil {
		t.Fatal(err)
	}
	payload := enc[lay.Blocks[0].Start:]
	nb := uint64(len(lay.Blocks))
	lens := make([]uint64, nb)
	for b, r := range lay.Blocks {
		lens[b] = uint64(r.End - r.Start)
	}

	cases := map[string][]byte{
		"empty":              {},
		"magic only":         []byte("BLK1"),
		"truncated prefix":   enc[:6],
		"truncated table":    enc[:lay.Blocks[0].Start-2],
		"unknown id":         append([]byte("BLK1\xEE"), enc[5:]...),
		"zero blocks":        mangleHeader(t, enc, 8192, 2048, 0, nil, payload),
		"zero blockElems":    mangleHeader(t, enc, 8192, 0, 4, lens, payload),
		"block count lie":    mangleHeader(t, enc, 8192, 2048, 3, lens[:3], payload),
		"huge n":             mangleHeader(t, enc, 1<<40, 2048, 4, lens, payload),
		"overflowing length": mangleHeader(t, enc, 8192, 2048, 4, []uint64{lens[0], lens[1], lens[2], 1 << 50}, payload),
		"overlapping blocks": mangleHeader(t, enc, 8192, 2048, 4, []uint64{lens[0], lens[1], lens[2] - 10, lens[3]}, payload),
		"trailing bytes":     append(append([]byte(nil), enc...), 0xFF),
	}
	for name, data := range cases {
		if _, err := ParseBlockLayout(data, len(data)); err == nil {
			t.Errorf("%s: ParseBlockLayout accepted", name)
		}
		if _, err := Decompress(data); err == nil {
			t.Errorf("%s: Decompress accepted", name)
		}
		if _, ok := BlockRanges(data); ok {
			t.Errorf("%s: BlockRanges accepted", name)
		}
	}

	// The n-vs-payload allocation guard must trip before the decoder
	// allocates: a tiny stream claiming a huge element count is the
	// attack ParseBlockLayout's guard exists for. maxElemsPerByte
	// bounds what each codec could genuinely hold.
	for _, id := range []ID{ZFP, FPC, Flate} {
		tiny := mangleHeader(t, append([]byte("BLK1"), byte(id)), 1<<40, 1<<39, 2, []uint64{4, 4}, make([]byte, 8))
		if _, err := Decompress(tiny); err == nil {
			t.Errorf("%v: huge-n guard missed", id)
		}
	}
}

func TestBlockedAdapters(t *testing.T) {
	x := testField(12000, 9)
	adapters := []lossless.Codec{
		BlockedFPC{BlockElems: 4096},
		BlockedFlate{BlockElems: 4096},
	}
	inner := []lossless.Codec{lossless.FPC{}, lossless.Flate{}}
	for i, c := range adapters {
		if c.Name() != inner[i].Name() {
			t.Fatalf("adapter name %q != inner %q", c.Name(), inner[i].Name())
		}
		enc, err := c.Compress(x)
		if err != nil {
			t.Fatal(err)
		}
		if !IsBlocked(enc) {
			t.Fatalf("%s: adapter did not emit container", c.Name())
		}
		dec, err := c.Decompress(enc)
		if err != nil {
			t.Fatal(err)
		}
		if !bytesEqualFloats(dec, x) {
			t.Fatalf("%s: blocked round trip mismatch", c.Name())
		}
		// Legacy fallback: streams from the un-containered codec decode.
		legacy, err := inner[i].Compress(x)
		if err != nil {
			t.Fatal(err)
		}
		dec, err = c.Decompress(legacy)
		if err != nil {
			t.Fatalf("%s: legacy fallback: %v", c.Name(), err)
		}
		if !bytesEqualFloats(dec, x) {
			t.Fatalf("%s: legacy round trip mismatch", c.Name())
		}
		into := make([]float64, len(x))
		if err := c.DecompressInto(into, legacy); err != nil {
			t.Fatalf("%s: legacy DecompressInto: %v", c.Name(), err)
		}
		if !bytesEqualFloats(into, x) {
			t.Fatalf("%s: legacy DecompressInto mismatch", c.Name())
		}
	}
	// Codec mismatch: an FPC adapter must reject a flate container.
	flateEnc, err := BlockedFlate{BlockElems: 4096}.Compress(x)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (BlockedFPC{}).Decompress(flateEnc); err == nil {
		t.Fatal("FPC adapter accepted flate container")
	}
	if id, ok := StreamID(flateEnc); !ok || id != Flate {
		t.Fatalf("StreamID = %v, %v", id, ok)
	}
}

func bytesEqualFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestDeterministicOutput: container bytes must not depend on the
// worker schedule.
func TestDeterministicOutput(t *testing.T) {
	x := testField(16384, 13)
	for _, p := range allParams(1024) {
		a, err := Compress(x, p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Compress(x, p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%v: nondeterministic container bytes", p.Codec)
		}
	}
}
