package codec

import (
	"fmt"
	"math"

	"repro/internal/parallel"
	"repro/internal/sz"
	"repro/internal/zfp"
)

// Stats is the sz package's distortion summary; both containers report
// audits in the same shape so the quality layer handles either.
type Stats = sz.Stats

// CompressWithStats is Compress plus distortion accounting, with
// bitwise-identical output bytes. The lossless codecs (FPC, flate)
// need no decode at all — their reconstruction is exact by contract,
// so only the PSNR peak is scanned. ZFP's transform does not expose
// per-coefficient reconstructions on the encode path, so its audit
// decodes each just-written block into pooled scratch while it is
// cache-hot and accumulates the pointwise absolute errors.
func CompressWithStats(x []float64, p Params) ([]byte, Stats, error) {
	blob, err := Compress(x, p)
	if err != nil {
		return nil, Stats{}, err
	}
	var st Stats
	st.Elements = len(x)
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		if v > st.MaxAbsValue {
			st.MaxAbsValue = v
		}
	}
	switch p.Codec {
	case FPC, Flate:
		// Exact reconstruction: zero error, zero bound.
	case ZFP:
		st.Bound = p.Bound
		scratch := parallel.GetFloat64s(len(x))[:len(x)]
		defer parallel.PutFloat64s(scratch)
		if IsBlocked(blob) {
			err = decompressInto(scratch, blob, ZFP)
		} else {
			err = zfp.DecompressInto(scratch, blob)
		}
		if err != nil {
			return nil, Stats{}, fmt.Errorf("codec: audit decode: %w", err)
		}
		for i, v := range x {
			d := math.Abs(v - scratch[i])
			if d > st.MaxErr {
				st.MaxErr = d
			}
			st.SumErr += d
			st.SumSqAbs += d * d
		}
	default:
		return nil, Stats{}, fmt.Errorf("codec: unknown codec id %d", byte(p.Codec))
	}
	return blob, st, nil
}
