package codec

import "repro/internal/lossless"

// Container is implemented by codecs whose compressed streams may use
// the BLK1 blocked container. The streaming restore path uses it to
// pick the block-layout parser for a checkpoint blob; the ID also lets
// decode reject a stream written by a different codec.
type Container interface {
	// ContainerID returns the BLK1 codec ID the implementation writes.
	ContainerID() ID
}

// BlockedFPC is the lossless FPC codec wrapped in the BLK1 blocked
// container: compression and decompression run block-parallel, and
// blocked streams decode shard-by-shard through the streaming restore
// path. Legacy (un-containered) FPC streams still decode through the
// fallback path, and inputs of at most one block are emitted in the
// legacy format, so it is a drop-in replacement for lossless.FPC.
type BlockedFPC struct {
	// BlockElems is the element count per container block; 0 means
	// DefaultBlockElems.
	BlockElems int
}

// Name matches lossless.FPC so checkpoint manifests stay compatible.
func (BlockedFPC) Name() string { return lossless.FPC{}.Name() }

// ContainerID implements Container.
func (BlockedFPC) ContainerID() ID { return FPC }

// Compress encodes x exactly, block-parallel.
func (c BlockedFPC) Compress(x []float64) ([]byte, error) {
	return Compress(x, Params{Codec: FPC, BlockElems: c.BlockElems})
}

// Decompress reverses Compress; legacy FPC streams decode too.
func (c BlockedFPC) Decompress(data []byte) ([]float64, error) {
	if IsBlocked(data) {
		return decompress(data, FPC)
	}
	return lossless.FPC{}.Decompress(data)
}

// DecompressInto reverses Compress into dst; legacy FPC streams decode
// too.
func (c BlockedFPC) DecompressInto(dst []float64, data []byte) error {
	if IsBlocked(data) {
		return decompressInto(dst, data, FPC)
	}
	return lossless.FPC{}.DecompressInto(dst, data)
}

// BlockedFlate is the DEFLATE codec wrapped in the BLK1 blocked
// container; see BlockedFPC for the container semantics. Level follows
// compress/flate (0 = default).
type BlockedFlate struct {
	Level int
	// BlockElems is the element count per container block; 0 means
	// DefaultBlockElems.
	BlockElems int
}

// Name matches lossless.Flate so checkpoint manifests stay compatible.
func (BlockedFlate) Name() string { return lossless.Flate{}.Name() }

// ContainerID implements Container.
func (BlockedFlate) ContainerID() ID { return Flate }

// Compress encodes x exactly, block-parallel.
func (c BlockedFlate) Compress(x []float64) ([]byte, error) {
	return Compress(x, Params{Codec: Flate, Level: c.Level, BlockElems: c.BlockElems})
}

// Decompress reverses Compress; legacy flate streams decode too.
func (c BlockedFlate) Decompress(data []byte) ([]float64, error) {
	if IsBlocked(data) {
		return decompress(data, Flate)
	}
	return lossless.Flate{Level: c.Level}.Decompress(data)
}

// DecompressInto reverses Compress into dst; legacy flate streams
// decode too.
func (c BlockedFlate) DecompressInto(dst []float64, data []byte) error {
	if IsBlocked(data) {
		return decompressInto(dst, data, Flate)
	}
	return lossless.Flate{Level: c.Level}.DecompressInto(dst, data)
}

// The two adapters satisfy lossless.Codec.
var (
	_ lossless.Codec = BlockedFPC{}
	_ lossless.Codec = BlockedFlate{}
	_ Container      = BlockedFPC{}
	_ Container      = BlockedFlate{}
)
