// Package codec provides the generic blocked container that gives the
// non-SZ codecs — ZFP, FPC, and DEFLATE — the same block-parallel
// treatment the SZ compressor's SZG2 container provides: fixed-size
// element blocks, each compressed as a fully independent stream of the
// underlying codec, framed by a header that records every block's byte
// span. Blocks compress and decompress concurrently across the
// parallel worker pool, a shard holding whole blocks decodes without
// its neighbors, and the header layout is compatible with the sharded
// checkpoint writer's block-aligned cut machinery (BlockRanges /
// SplitBlocks mirror the sz package's contracts).
//
// The BLK1 container:
//
//	"BLK1" | codec ID byte | uvarint n | uvarint blockElems
//	       | uvarint nBlocks | nBlocks × uvarint blockByteLen
//	       | concatenated block payloads
//
// Block i covers elements [i·blockElems, min(n, (i+1)·blockElems)).
// Each block payload is the codec ID byte followed by a complete
// legacy stream of that codec (zfp "ZFG1", fpc, or flate framing), so
// every block is self-describing and the per-block decoder needs no
// container context. Legacy single-block streams — anything without
// the BLK1 magic — still decode through the adapters' fallback path.
//
// For ZFP the container block size is forced to a multiple of the
// transform block (zfp.BlockSize), which keeps every transform block
// inside one container block at the same intra-block offsets; the
// blocked reconstruction is then bitwise identical to the legacy
// stream's. FPC and flate are lossless, so blocked and legacy streams
// trivially reconstruct the same bits.
package codec

import (
	"encoding/binary"
	"fmt"

	"repro/internal/lossless"
	"repro/internal/parallel"
	"repro/internal/sz"
	"repro/internal/zfp"
)

// ID names the underlying codec of a BLK1 container. The values are
// part of the on-disk format.
type ID byte

const (
	// ZFP is the transform-based error-bounded codec (zfp package).
	ZFP ID = 1
	// FPC is the predictive XOR lossless codec (lossless.FPC).
	FPC ID = 2
	// Flate is the DEFLATE lossless codec (lossless.Flate).
	Flate ID = 3
)

// String returns the codec's report name, matching the underlying
// codec's Name() where one exists.
func (id ID) String() string {
	switch id {
	case ZFP:
		return "zfp"
	case FPC:
		return lossless.FPC{}.Name()
	case Flate:
		return lossless.Flate{}.Name()
	}
	return fmt.Sprintf("codec(%d)", byte(id))
}

// valid reports whether id names a known codec.
func (id ID) valid() bool { return id == ZFP || id == FPC || id == Flate }

// maxElemsPerByte is the allocation guard for crafted headers: the
// smallest possible encoded footprint per element for each codec, as a
// "max elements per payload byte" factor. FPC spends at least a header
// nibble per value; flate's DEFLATE expands at most ~1032×, and eight
// raw bytes make one float64; ZFP spends at least one varint byte per
// coefficient behind the same ~1032× DEFLATE bound.
func maxElemsPerByte(id ID) int {
	switch id {
	case FPC:
		return 2
	case Flate:
		return 129 // ceil(1032/8)
	case ZFP:
		return 1032
	}
	return 0
}

const magic = "BLK1"

// DefaultBlockElems is the element count per container block when
// Params.BlockElems is zero. It matches the SZ container's default so
// shard-cut granularity is uniform across codecs.
const DefaultBlockElems = 32768

// Range and BlockLayout are shared with the sz package: both
// containers describe their block structure the same way, so the
// streaming restore machinery handles either with one set of types.
type Range = sz.Range

// BlockLayout is the sz package's layout type (see sz.BlockLayout).
type BlockLayout = sz.BlockLayout

// Params selects the codec and shapes the container.
type Params struct {
	// Codec picks the underlying compressor.
	Codec ID
	// Bound is the absolute error bound (ZFP only; lossless codecs
	// ignore it).
	Bound float64
	// Level is the DEFLATE level (Flate only; 0 = default).
	Level int
	// BlockElems is the element count per container block; 0 means
	// DefaultBlockElems. For ZFP it is rounded up to a multiple of
	// zfp.BlockSize so blocked output is bitwise identical to legacy.
	BlockElems int
}

// sanitize validates p and fills defaults.
func (p Params) sanitize() (Params, error) {
	if !p.Codec.valid() {
		return p, fmt.Errorf("codec: unknown codec id %d", byte(p.Codec))
	}
	if p.BlockElems <= 0 {
		p.BlockElems = DefaultBlockElems
	}
	if p.Codec == ZFP {
		if r := p.BlockElems % zfp.BlockSize; r != 0 {
			p.BlockElems += zfp.BlockSize - r
		}
	}
	return p, nil
}

// appendBlock appends one block payload — the ID byte plus a complete
// legacy stream of the codec — to buf.
func appendBlock(buf []byte, p Params, chunk []float64) ([]byte, error) {
	buf = append(buf, byte(p.Codec))
	switch p.Codec {
	case ZFP:
		return zfp.AppendCompress(buf, chunk, p.Bound)
	case FPC:
		return lossless.FPC{}.AppendCompress(buf, chunk)
	case Flate:
		return lossless.Flate{Level: p.Level}.AppendCompress(buf, chunk)
	}
	return nil, fmt.Errorf("codec: unknown codec id %d", byte(p.Codec))
}

// Compress encodes x. Inputs of at most one block emit the codec's
// legacy stream unchanged (no container framing); larger inputs emit
// the BLK1 container, compressing blocks concurrently across the
// worker pool. Output bytes depend only on the input and parameters,
// never on the schedule.
func Compress(x []float64, p Params) ([]byte, error) {
	p, err := p.sanitize()
	if err != nil {
		return nil, err
	}
	n := len(x)
	if n <= p.BlockElems {
		switch p.Codec {
		case ZFP:
			return zfp.Compress(x, p.Bound)
		case FPC:
			return lossless.FPC{}.Compress(x)
		default:
			return lossless.Flate{Level: p.Level}.Compress(x)
		}
	}

	blockElems := p.BlockElems
	nBlocks := (n + blockElems - 1) / blockElems
	blocks := make([][]byte, nBlocks)
	errs := make([]error, nBlocks)
	parallel.ForBounded(nBlocks, 1, 0, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			start := b * blockElems
			end := start + blockElems
			if end > n {
				end = n
			}
			chunk := x[start:end]
			// One uniform worst-case request (FPC's 8n + n/2 bound is the
			// largest of the three codecs) keeps every pooled buffer at
			// least as big as the 8n-byte raw images the codecs stage
			// internally, so the shared pool reaches a steady state
			// instead of ping-ponging between compressed-size and
			// raw-size capacities on every block.
			buf := parallel.GetBytes(9*len(chunk) + 80)
			blocks[b], errs[b] = appendBlock(buf, p, chunk)
		}
	})
	for b, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("codec: block %d: %w", b, err)
		}
	}

	total := 0
	for _, blk := range blocks {
		total += len(blk)
	}
	out := make([]byte, 0, total+16+binary.MaxVarintLen64*(nBlocks+3))
	out = append(out, magic...)
	out = append(out, byte(p.Codec))
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		k := binary.PutUvarint(scratch[:], v)
		out = append(out, scratch[:k]...)
	}
	putUvarint(uint64(n))
	putUvarint(uint64(blockElems))
	putUvarint(uint64(nBlocks))
	for _, blk := range blocks {
		putUvarint(uint64(len(blk)))
	}
	for b, blk := range blocks {
		out = append(out, blk...)
		parallel.PutBytes(blk)
		blocks[b] = nil
	}
	return out, nil
}

// IsBlocked reports whether data starts like a BLK1 container.
func IsBlocked(data []byte) bool {
	return len(data) >= len(magic) && string(data[:len(magic)]) == magic
}

// StreamID returns the codec ID recorded in a BLK1 container header.
func StreamID(data []byte) (ID, bool) {
	if !IsBlocked(data) || len(data) < len(magic)+1 {
		return 0, false
	}
	id := ID(data[len(magic)])
	return id, id.valid()
}

// parseLayout validates a BLK1 container header and returns its codec
// ID and block layout: offsets[b] is the absolute byte offset of block
// b's payload, with offsets[nBlocks] == streamLen. data must contain
// the complete header (through the block-length table) but may be
// truncated before the payloads; streamLen is the byte length of the
// full stream, against which the allocation guards and block spans are
// validated. The guards reject crafted headers before any caller
// allocates output.
func parseLayout(data []byte, streamLen int) (ID, blockedLayout, error) {
	var lay blockedLayout
	if !IsBlocked(data) {
		return 0, lay, fmt.Errorf("codec: not a BLK1 stream")
	}
	off := len(magic) + 1
	if len(data) < off {
		return 0, lay, fmt.Errorf("codec: truncated blocked header")
	}
	id := ID(data[len(magic)])
	if !id.valid() {
		return 0, lay, fmt.Errorf("codec: unknown codec id %d", byte(id))
	}
	getUvarint := func() (uint64, error) {
		v, k := binary.Uvarint(data[off:])
		if k <= 0 {
			return 0, fmt.Errorf("codec: truncated blocked header")
		}
		off += k
		return v, nil
	}
	n64, err := getUvarint()
	if err != nil {
		return 0, lay, err
	}
	blockElems64, err := getUvarint()
	if err != nil {
		return 0, lay, err
	}
	nBlocks64, err := getUvarint()
	if err != nil {
		return 0, lay, err
	}
	n := int(n64)
	blockElems := int(blockElems64)
	nBlocks := int(nBlocks64)
	if n < 0 || blockElems < 1 || nBlocks < 1 {
		return 0, lay, fmt.Errorf("codec: invalid blocked header (n=%d blockElems=%d nBlocks=%d)",
			n, blockElems, nBlocks)
	}
	if want := (n + blockElems - 1) / blockElems; want != nBlocks {
		return 0, lay, fmt.Errorf("codec: blocked header inconsistent: %d elements in %d-element blocks needs %d blocks, header says %d",
			n, blockElems, want, nBlocks)
	}
	// Allocation guards: every block needs at least one length byte,
	// and the codec's minimum encoded footprint bounds how many
	// elements the remaining bytes could genuinely hold.
	if nBlocks > streamLen-off {
		return 0, lay, fmt.Errorf("codec: %d blocks exceed %d remaining bytes", nBlocks, streamLen-off)
	}
	if n > maxElemsPerByte(id)*(streamLen-off) {
		return 0, lay, fmt.Errorf("codec: %d elements exceed %d payload bytes", n, streamLen-off)
	}
	lens := make([]int, nBlocks)
	for b := range lens {
		l, err := getUvarint()
		if err != nil {
			return 0, lay, err
		}
		if l > uint64(streamLen-off) {
			return 0, lay, fmt.Errorf("codec: block %d length %d exceeds payload", b, l)
		}
		lens[b] = int(l)
	}
	offsets := make([]int, nBlocks+1)
	offsets[0] = off
	for b, l := range lens {
		offsets[b+1] = offsets[b] + l
	}
	if offsets[nBlocks] != streamLen {
		return 0, lay, fmt.Errorf("codec: blocked payload is %d bytes, blocks cover %d",
			streamLen-off, offsets[nBlocks]-off)
	}
	return id, blockedLayout{n: n, blockElems: blockElems, offsets: offsets}, nil
}

// blockedLayout mirrors the sz package's internal layout form.
type blockedLayout struct {
	n, blockElems int
	offsets       []int
}

// Decompress decodes a BLK1 container (any codec).
func Decompress(data []byte) ([]float64, error) {
	return decompress(data, 0)
}

// DecompressAs is Decompress restricted to containers written by the
// given codec; a container holding another codec's data is rejected.
func DecompressAs(data []byte, want ID) ([]float64, error) {
	return decompress(data, want)
}

func decompress(data []byte, want ID) ([]float64, error) {
	id, lay, err := parseLayout(data, len(data))
	if err != nil {
		return nil, err
	}
	if want != 0 && id != want {
		return nil, fmt.Errorf("codec: stream holds %v data, want %v", id, want)
	}
	out := make([]float64, lay.n)
	if err := decodeBlocksInto(data, lay, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressInto decodes a BLK1 container into dst, whose length must
// equal the stream's element count; blocks decode concurrently
// straight into their slices of dst.
func DecompressInto(dst []float64, data []byte) error {
	return decompressInto(dst, data, 0)
}

// DecompressIntoAs is DecompressInto restricted to containers written
// by the given codec.
func DecompressIntoAs(dst []float64, data []byte, want ID) error {
	return decompressInto(dst, data, want)
}

func decompressInto(dst []float64, data []byte, want ID) error {
	id, lay, err := parseLayout(data, len(data))
	if err != nil {
		return err
	}
	if want != 0 && id != want {
		return fmt.Errorf("codec: stream holds %v data, want %v", id, want)
	}
	if len(dst) != lay.n {
		return fmt.Errorf("codec: stream holds %d values, dst has %d", lay.n, len(dst))
	}
	return decodeBlocksInto(data, lay, dst)
}

// decodeBlocksInto decodes every block of a parsed BLK1 stream into
// its slice of out, concurrently across the worker pool.
func decodeBlocksInto(data []byte, lay blockedLayout, out []float64) error {
	n, blockElems, offsets := lay.n, lay.blockElems, lay.offsets
	nBlocks := len(offsets) - 1
	errs := make([]error, nBlocks)
	parallel.ForBounded(nBlocks, 1, 0, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			start := b * blockElems
			end := start + blockElems
			if end > n {
				end = n
			}
			errs[b] = DecodeBlockInto(out[start:end], data[offsets[b]:offsets[b+1]])
		}
	})
	for b, err := range errs {
		if err != nil {
			return fmt.Errorf("codec: block %d: %w", b, err)
		}
	}
	return nil
}

// DecodeBlockInto decodes one BLK1 block payload — the bytes of one
// BlockLayout span — into dst, which must hold exactly the block's
// element count (BlockLayout.ElemRange). It is the streaming-decode
// entry point: every block is a fully independent compression unit,
// so a shard holding whole blocks decodes without its neighbors.
func DecodeBlockInto(dst []float64, block []byte) error {
	if len(block) < 1 {
		return fmt.Errorf("codec: empty block")
	}
	id, payload := ID(block[0]), block[1:]
	switch id {
	case ZFP:
		return zfp.DecompressInto(dst, payload)
	case FPC:
		return lossless.FPC{}.DecompressInto(dst, payload)
	case Flate:
		return lossless.Flate{}.DecompressInto(dst, payload)
	}
	return fmt.Errorf("codec: unknown block payload codec %d", byte(id))
}

// HeaderPrefixLen is the number of leading bytes of a BLK1 stream that
// always contain the fixed header fields (magic, ID byte, and the
// three size varints); HeaderLenBound needs at most this much. It
// equals sz.HeaderPrefixLen, so streaming readers can peek once for
// either container family.
const HeaderPrefixLen = 5 + 3*binary.MaxVarintLen64

// HeaderLenBound reports an upper bound on the byte length of a BLK1
// container header (through the per-block length table), given the
// stream's first bytes. Streaming readers use it to size the header
// fetch before ParseBlockLayout: peek HeaderPrefixLen bytes, get the
// bound, fetch that much, parse. ok is false when prefix is not the
// start of a BLK1 stream or is too short to tell.
func HeaderLenBound(prefix []byte) (bound int, ok bool) {
	if !IsBlocked(prefix) {
		return 0, false
	}
	off := len(magic) + 1
	if len(prefix) < off {
		return 0, false
	}
	var nBlocks uint64
	for j := 0; j < 3; j++ {
		v, k := binary.Uvarint(prefix[off:])
		if k <= 0 {
			return 0, false
		}
		off += k
		nBlocks = v
	}
	// Guard the bound arithmetic against a crafted count; the real
	// nBlocks-vs-stream-length check happens in parseLayout.
	if nBlocks > uint64(1<<31/binary.MaxVarintLen64) {
		return 0, false
	}
	return off + int(nBlocks)*binary.MaxVarintLen64, true
}

// ParseBlockLayout validates a BLK1 container header and returns its
// block layout. header must contain the complete header (magic
// through the block-length table) and may be truncated anywhere after
// it; streamLen is the byte length of the full stream, which the
// crafted-header allocation guards and the block spans are validated
// against. In-memory callers pass the whole stream and its length.
func ParseBlockLayout(header []byte, streamLen int) (BlockLayout, error) {
	_, lay, err := parseLayout(header, streamLen)
	if err != nil {
		return BlockLayout{}, err
	}
	bl := BlockLayout{N: lay.n, BlockElems: lay.blockElems, Blocks: make([]Range, len(lay.offsets)-1)}
	for b := range bl.Blocks {
		bl.Blocks[b] = Range{Start: lay.offsets[b], End: lay.offsets[b+1]}
	}
	return bl, nil
}

// BlockRanges returns the absolute byte span of every independently
// compressed block payload inside a BLK1 stream, in order; the first
// span starts after the container header and the last ends at
// len(data). It returns (nil, false) when data is not a valid BLK1
// container (legacy single-block streams, other formats, corrupt
// headers). The spans are the natural cut points for sharded
// checkpoint storage, exactly like sz.BlockRanges.
func BlockRanges(data []byte) ([]Range, bool) {
	_, lay, err := parseLayout(data, len(data))
	if err != nil {
		return nil, false
	}
	ranges := make([]Range, len(lay.offsets)-1)
	for b := range ranges {
		ranges[b] = Range{Start: lay.offsets[b], End: lay.offsets[b+1]}
	}
	return ranges, true
}

// SplitBlocks partitions an encoded stream into at most maxParts
// contiguous byte spans that cover it exactly. For BLK1 streams every
// cut falls on a block boundary (the container header travels with the
// first span) and the spans are balanced by bytes, not block count, so
// unevenly compressible blocks still split into similar-sized parts.
// Legacy or foreign streams return a single span; maxParts < 1 is
// treated as 1. The contract matches sz.SplitBlocks.
func SplitBlocks(data []byte, maxParts int) []Range {
	if maxParts < 1 {
		maxParts = 1
	}
	whole := []Range{{Start: 0, End: len(data)}}
	if maxParts == 1 {
		return whole
	}
	blocks, ok := BlockRanges(data)
	if !ok || len(blocks) == 0 {
		return whole
	}
	if maxParts > len(blocks) {
		maxParts = len(blocks)
	}
	parts := make([]Range, 0, maxParts)
	start := 0
	bi := 0
	for p := 0; p < maxParts; p++ {
		// Even byte target for the remaining parts, then advance to the
		// nearest block boundary at or past it.
		target := start + (len(data)-start+maxParts-p-1)/(maxParts-p)
		end := len(data)
		if p < maxParts-1 {
			for bi < len(blocks)-1 && blocks[bi].End < target {
				bi++
			}
			end = blocks[bi].End
			bi++
		}
		parts = append(parts, Range{Start: start, End: end})
		if end == len(data) {
			break
		}
		start = end
	}
	return parts
}
