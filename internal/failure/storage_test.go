package failure

import (
	"errors"
	"testing"
	"time"

	"repro/internal/fti"
)

func TestStorageInjectorArmedOneShots(t *testing.T) {
	mem := fti.NewMemStorage()
	si := NewStorageInjector(mem, 1, StorageProfile{})
	si.ArmWrite(1)
	err := si.Write("a", []byte{1})
	if err == nil {
		t.Fatal("armed write fault did not fire")
	}
	if fti.ClassifyError(err) != fti.ClassTransient {
		t.Fatalf("armed fault classified %v, want transient", fti.ClassifyError(err))
	}
	// The fault fired on the attempt, not the op: the retry passes.
	if err := si.Write("a", []byte{1}); err != nil {
		t.Fatalf("retry after armed fault: %v", err)
	}
	si.ArmRead(1)
	if _, err := si.Read("a"); err == nil {
		t.Fatal("armed read fault did not fire")
	}
	if got, err := si.Read("a"); err != nil || len(got) != 1 {
		t.Fatalf("read after armed fault: %v %v", got, err)
	}
	st := si.Stats()
	if st.WriteFaults != 1 || st.ReadFaults != 1 || st.TransientFaults != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestStorageInjectorSlowDelay(t *testing.T) {
	mem := fti.NewMemStorage()
	si := NewStorageInjector(mem, 1, StorageProfile{SlowDelay: 5 * time.Millisecond})
	si.ArmSlow(1)
	start := time.Now()
	if err := si.Write("a", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("slow op returned in %v, want ≥ 5ms", d)
	}
	if err := si.Write("b", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if st := si.Stats(); st.SlowOps != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestStorageInjectorFailFirstAttempt(t *testing.T) {
	mem := fti.NewMemStorage()
	si := NewStorageInjector(mem, 1, StorageProfile{FailFirstAttempt: true})
	names := []string{"a", "b", "c", "d"}
	for _, n := range names {
		if err := si.Write(n, []byte{1}); err == nil {
			t.Fatalf("first attempt on %s must fail", n)
		}
		if err := si.Write(n, []byte{1}); err != nil {
			t.Fatalf("second attempt on %s must pass: %v", n, err)
		}
	}
	st := si.Stats()
	// Deterministic campaign accounting: exactly one fault per distinct
	// (op, name) pair, all transient.
	if st.WriteFaults != len(names) || st.TransientFaults != len(names) || st.PermanentFaults != 0 {
		t.Fatalf("stats %+v, want exactly %d transient write faults", st, len(names))
	}
}

func TestStorageInjectorSeededDeterminism(t *testing.T) {
	run := func() InjectStats {
		si := NewStorageInjector(fti.NewMemStorage(), 99, StorageProfile{Rate: 0.5, TransientFrac: 0.7})
		for i := 0; i < 200; i++ {
			_ = si.Write("obj", []byte{byte(i)})
			_, _ = si.Read("obj")
		}
		return si.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different campaigns: %+v vs %+v", a, b)
	}
	if a.Total() == 0 || a.TransientFaults == 0 || a.PermanentFaults == 0 {
		t.Fatalf("rate 0.5 / frac 0.7 over 400 attempts should mix classes: %+v", a)
	}
}

func TestStorageInjectorCrashReviveFsck(t *testing.T) {
	mem := fti.NewMemStorage()
	si := NewStorageInjector(mem, 1, StorageProfile{})
	// A real committed checkpoint, then a crash mid-way through the next.
	c := fti.New(si, fti.Raw{})
	x := []float64{1, 2, 3}
	c.Protect("x", &x)
	if _, err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	si.ArmCrash()
	if _, err := c.Checkpoint(); err == nil {
		t.Fatal("checkpoint through a crashing store must fail")
	}
	err := si.Write("ckpt-000000000003", []byte("never commits"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash write returned %v", err)
	}
	if fti.ClassifyError(err) != fti.ClassPermanent {
		t.Fatal("a crashed store must classify permanent (fail fast, no retry storm)")
	}
	if !si.Crashed() {
		t.Fatal("store should be dead")
	}
	// Dead store: every op fails, and the torn temp artifact is on the
	// inner store (crash point 2).
	if _, err := si.Read("ckpt-000000000001"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read on dead store: %v", err)
	}
	if _, err := si.List(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("list on dead store: %v", err)
	}
	if _, err := mem.Read("ckpt-000000000002.tmp"); err != nil {
		t.Fatalf("crashed checkpoint left no temp debris: %v", err)
	}
	// Restart: revive, fsck, and only the committed object survives.
	si.Revive()
	rep, err := fti.Fsck(si)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.TempRemoved) != 1 {
		t.Fatalf("fsck report %s: want the torn temp swept", rep)
	}
	names, err := si.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "ckpt-000000000001" {
		t.Fatalf("post-fsck namespace %v", names)
	}
}

func TestParsePlanIterRanges(t *testing.T) {
	p, err := ParsePlan("storagewrite@10..20/5,slowio@12", 1)
	if err != nil {
		t.Fatal(err)
	}
	evs := p.Events()
	if len(evs) != 4 {
		t.Fatalf("events %v, want iterations 10, 12, 15, 20", evs)
	}
	wantIters := []int{10, 12, 15, 20}
	for i, ev := range evs {
		if ev.Iteration != wantIters[i] {
			t.Fatalf("event %d at %d, want %d", i, ev.Iteration, wantIters[i])
		}
	}
	if evs[1].Kinds[0] != SlowIO {
		t.Fatalf("iteration 12 kinds %v", evs[1].Kinds)
	}
	// A campaign spec expands to one event per scheduled iteration.
	p, err = ParsePlan("storageread@100..600", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events()) != 501 {
		t.Fatalf("range 100..600 gave %d events", len(p.Events()))
	}
	for _, bad := range []string{
		"storagewrite@5/2",   // stride without a range
		"proc@20..10",        // descending range
		"proc@0..5",          // non-positive start
		"proc@1..9999999999", // over the expansion bound
		"crash@3..9/0",       // non-positive stride
		"storagewrit@5",      // typo'd kind
	} {
		if _, err := ParsePlan(bad, 1); err == nil {
			t.Errorf("spec %q should fail to parse", bad)
		}
	}
}

func TestInjectedErrorSelfClassifies(t *testing.T) {
	for _, class := range []fti.ErrClass{fti.ClassTransient, fti.ClassPermanent} {
		e := &InjectedError{Class: class, Msg: "x"}
		if fti.ClassifyError(e) != class {
			t.Errorf("InjectedError class %v misclassified as %v", class, fti.ClassifyError(e))
		}
	}
	var cl fti.Classifier
	if !errors.As(error(ErrCrashed), &cl) || cl.FaultClass() != fti.ClassPermanent {
		t.Fatal("ErrCrashed must classify permanent")
	}
}
