// Deterministic fault-injection harness: a seeded plan of failure
// kinds pinned to chosen iterations, plus storage-corruption appliers
// for the checkpoint tiers. The spec grammar is
//
//	spec  := event ("," event)*
//	event := kind ("+" kind)* "@" iterspec
//	kind  := "proc" | "abft" | "shard" | "manifest" | "midckpt"
//	       | "storagewrite" | "storageread" | "slowio" | "crash"
//	iterspec := N | N..M | N..M/S
//
// An iterspec range schedules the event at every iteration N, N+S,
// N+2S, … ≤ M (stride S defaults to 1), which is how a campaign of
// hundreds of injected storage faults is spelled in one event:
// "storagewrite@100..600" arms a transient write fault at each of 501
// iterations.
//
// e.g. "proc@50,abft+proc@120,manifest+proc@200": a plain process loss
// at iteration 50, a process loss with corrupted ABFT retained state
// at 120 (forcing the chain past the ABFT tier), and a process loss
// with a corrupted checkpoint manifest at 200 (forcing it past the
// latest checkpoint too). Kinds:
//
//	proc          fail-stop loss of one rank's in-memory state
//	abft          corrupt the ABFT guard's retained redundancy
//	shard         corrupt one shard object of the newest checkpoint
//	manifest      corrupt the newest checkpoint's base object (manifest,
//	              or the payload itself for monolithic layouts)
//	midckpt       the failure strikes while a checkpoint is being
//	              written: the in-flight checkpoint is aborted, then the
//	              process is lost
//	storagewrite  arm a storage fault on an upcoming checkpoint write
//	              (transient or permanent per the injector's seeded mix)
//	storageread   arm a storage fault on an upcoming checkpoint read
//	midckpt       (see above)
//	slowio        arm a slow (delayed) storage op, exercising hedged
//	              reads and the retry layer's latency accounting
//	crash         the process dies mid-commit: the storage goes dead
//	              leaving a partial temp artifact, and restart runs the
//	              fsck sweep before recovering
//
// Corruption kinds without proc/midckpt in the same event are latent:
// they damage state silently and surface at the next recovery — the
// fallback-discovery path the tier-exhaustion matrix exercises. The
// storage kinds are handled by StorageInjector (see storage.go),
// which the runner interposes between the resilient retry layer and
// the real store.
package failure

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/fti"
	"repro/internal/fti/shard"
)

// Kind is one failure flavor the injection plan can schedule.
type Kind int

const (
	// ProcLoss is a fail-stop process loss: one rank's in-memory block
	// of the solver state is gone.
	ProcLoss Kind = iota
	// CorruptABFT damages the ABFT guard's retained redundant copies,
	// so the ABFT tier fails verification.
	CorruptABFT
	// CorruptShard damages one shard object of the newest checkpoint.
	CorruptShard
	// CorruptManifest damages the newest checkpoint's base object (the
	// manifest for sharded layouts, the payload for monolithic ones).
	CorruptManifest
	// MidCheckpoint makes the failure strike during a checkpoint
	// write: the in-flight checkpoint is aborted and never commits.
	MidCheckpoint
	// StorageWriteFault arms a fault on an upcoming storage write (the
	// injector's seeded transient/permanent mix decides which).
	StorageWriteFault
	// StorageReadFault arms a fault on an upcoming storage read.
	StorageReadFault
	// SlowIO arms a delayed storage operation.
	SlowIO
	// Crash kills the storage mid-commit: a partial temp artifact is
	// left behind and every subsequent op fails until Revive.
	Crash
)

var kindNames = map[Kind]string{
	ProcLoss:          "proc",
	CorruptABFT:       "abft",
	CorruptShard:      "shard",
	CorruptManifest:   "manifest",
	MidCheckpoint:     "midckpt",
	StorageWriteFault: "storagewrite",
	StorageReadFault:  "storageread",
	SlowIO:            "slowio",
	Crash:             "crash",
}

// String names the kind as the spec grammar spells it.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind parses one spec-grammar kind name.
func ParseKind(s string) (Kind, error) {
	for k, n := range kindNames {
		if n == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("failure: unknown injection kind %q (want proc|abft|shard|manifest|midckpt|storagewrite|storageread|slowio|crash)", s)
}

// Injection is one scheduled event: the kinds that strike together at
// one iteration.
type Injection struct {
	Iteration int
	Kinds     []Kind
}

// Plan is a parsed, seeded injection schedule. The plan's random
// stream drives any per-event choices (which rank dies, which shard is
// corrupted), so a (spec, seed) pair reproduces the identical run.
type Plan struct {
	events []Injection
	rng    *rand.Rand
}

// ParsePlan parses the spec grammar into a deterministic plan. Events
// are sorted by iteration; two events at the same iteration merge.
func ParsePlan(spec string, seed int64) (*Plan, error) {
	p := &Plan{rng: rand.New(rand.NewSource(seed))}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	at := map[int]*Injection{}
	for _, ev := range strings.Split(spec, ",") {
		ev = strings.TrimSpace(ev)
		kindsPart, iterPart, ok := strings.Cut(ev, "@")
		if !ok {
			return nil, fmt.Errorf("failure: event %q lacks '@iteration'", ev)
		}
		iters, err := parseIterSpec(strings.TrimSpace(iterPart))
		if err != nil {
			return nil, fmt.Errorf("failure: event %q: %w", ev, err)
		}
		var kinds []Kind
		for _, ks := range strings.Split(kindsPart, "+") {
			k, err := ParseKind(strings.TrimSpace(ks))
			if err != nil {
				return nil, err
			}
			kinds = append(kinds, k)
		}
		for _, iter := range iters {
			inj := at[iter]
			if inj == nil {
				inj = &Injection{Iteration: iter}
				at[iter] = inj
			}
			for _, k := range kinds {
				seen := false
				for _, have := range inj.Kinds {
					if have == k {
						seen = true
						break
					}
				}
				if !seen {
					inj.Kinds = append(inj.Kinds, k)
				}
			}
		}
	}
	for _, inj := range at {
		p.events = append(p.events, *inj)
	}
	sort.Slice(p.events, func(i, j int) bool { return p.events[i].Iteration < p.events[j].Iteration })
	return p, nil
}

// maxRangeEvents bounds how many iterations one range iterspec may
// expand to — a typo'd "1..1000000000" should fail parsing, not eat
// the heap.
const maxRangeEvents = 1 << 20

// parseIterSpec expands an iteration spec — "N", "N..M", or "N..M/S"
// — into the ordered iterations it schedules.
func parseIterSpec(s string) ([]int, error) {
	rangePart, stridePart, hasStride := strings.Cut(s, "/")
	first, last, isRange := strings.Cut(rangePart, "..")
	lo, err := strconv.Atoi(strings.TrimSpace(first))
	if err != nil || lo <= 0 {
		return nil, fmt.Errorf("needs a positive iteration, got %q", s)
	}
	if !isRange {
		if hasStride {
			return nil, fmt.Errorf("stride %q without a range in %q", stridePart, s)
		}
		return []int{lo}, nil
	}
	hi, err := strconv.Atoi(strings.TrimSpace(last))
	if err != nil || hi < lo {
		return nil, fmt.Errorf("range end must be ≥ start in %q", s)
	}
	stride := 1
	if hasStride {
		stride, err = strconv.Atoi(strings.TrimSpace(stridePart))
		if err != nil || stride <= 0 {
			return nil, fmt.Errorf("needs a positive stride, got %q", s)
		}
	}
	if (hi-lo)/stride+1 > maxRangeEvents {
		return nil, fmt.Errorf("range %q expands to more than %d events", s, maxRangeEvents)
	}
	var iters []int
	for i := lo; i <= hi; i += stride {
		iters = append(iters, i)
	}
	return iters, nil
}

// Events returns the remaining scheduled events in iteration order.
func (p *Plan) Events() []Injection { return p.events }

// Empty reports whether no events remain.
func (p *Plan) Empty() bool { return len(p.events) == 0 }

// Take consumes and returns the kinds scheduled at iterations ≤ iter
// (normally exactly one event). Nil when nothing is due.
func (p *Plan) Take(iter int) []Kind {
	var kinds []Kind
	for len(p.events) > 0 && p.events[0].Iteration <= iter {
		kinds = append(kinds, p.events[0].Kinds...)
		p.events = p.events[1:]
	}
	return kinds
}

// Rand exposes the plan's seeded stream for per-event choices (failed
// rank, corrupted shard index).
func (p *Plan) Rand() *rand.Rand { return p.rng }

// latestCkptBase returns the newest checkpoint base object name in
// storage (monolithic payload or shard manifest), or an error when
// none exists. The name format is fti's "ckpt-%012d"; shard objects
// ("<base>.sNNNNN") are not bases.
func latestCkptBase(st fti.Storage) (string, error) {
	names, err := st.List()
	if err != nil {
		return "", err
	}
	best, bestSeq := "", -1
	for _, n := range names {
		rest, ok := strings.CutPrefix(n, "ckpt-")
		if !ok {
			continue
		}
		seq, err := strconv.Atoi(rest)
		if err != nil {
			continue // a shard object or stray name, not a base
		}
		if seq > bestSeq {
			best, bestSeq = n, seq
		}
	}
	if bestSeq < 0 {
		return "", fmt.Errorf("failure: no checkpoint in storage to corrupt")
	}
	return best, nil
}

// corruptObject flips a byte in the middle of the named object — a
// single-bit-rot style corruption the CRC layers must catch.
func corruptObject(st fti.Storage, name string) error {
	data, err := st.Read(name)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("failure: object %q is empty", name)
	}
	mut := append([]byte(nil), data...)
	mut[len(mut)/2] ^= 0xFF
	return st.Write(name, mut)
}

// CorruptLatestShard corrupts one shard object of the newest
// checkpoint, chosen by rng; for a monolithic checkpoint the payload
// itself is corrupted. It returns the corrupted object's name.
func CorruptLatestShard(st fti.Storage, rng *rand.Rand) (string, error) {
	base, err := latestCkptBase(st)
	if err != nil {
		return "", err
	}
	data, err := st.Read(base)
	if err != nil {
		return "", err
	}
	name := base
	if shard.IsManifest(data) {
		man, err := shard.ParseManifest(data)
		if err != nil || len(man.Shards) == 0 {
			return "", fmt.Errorf("failure: checkpoint %q has an unreadable manifest", base)
		}
		name = man.Shards[rng.Intn(len(man.Shards))].Name
	}
	if err := corruptObject(st, name); err != nil {
		return "", err
	}
	return name, nil
}

// CorruptLatestManifest corrupts the newest checkpoint's base object:
// the manifest for sharded layouts, the whole payload for monolithic
// ones. Either way the checkpoint stops being restorable and recovery
// must fall back. It returns the corrupted object's name.
func CorruptLatestManifest(st fti.Storage) (string, error) {
	base, err := latestCkptBase(st)
	if err != nil {
		return "", err
	}
	if err := corruptObject(st, base); err != nil {
		return "", err
	}
	return base, nil
}
