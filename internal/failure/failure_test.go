package failure

import (
	"math"
	"testing"
)

func TestNextIsMonotone(t *testing.T) {
	inj := NewInjector(3600, 1)
	now := 0.0
	for i := 0; i < 100; i++ {
		next := inj.Next(now)
		if next <= now {
			t.Fatalf("failure time %v not after now %v", next, now)
		}
		now = next
	}
}

func TestMeanMatchesMTTI(t *testing.T) {
	inj := NewInjector(3600, 2)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += inj.Next(0)
	}
	mean := sum / n
	if mean < 3400 || mean > 3800 {
		t.Fatalf("empirical MTTI %.0f, want ≈3600", mean)
	}
}

func TestExponentialShape(t *testing.T) {
	// Memorylessness check: P(X > 2m) ≈ P(X > m)², the signature of
	// the exponential distribution.
	inj := NewInjector(1000, 3)
	const n = 50000
	var gt1, gt2 int
	for i := 0; i < n; i++ {
		d := inj.Next(0)
		if d > 1000 {
			gt1++
		}
		if d > 2000 {
			gt2++
		}
	}
	p1 := float64(gt1) / n
	p2 := float64(gt2) / n
	if math.Abs(p2-p1*p1) > 0.02 {
		t.Fatalf("memorylessness violated: P(>2m)=%.3f, P(>m)²=%.3f", p2, p1*p1)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a := NewInjector(100, 7)
	b := NewInjector(100, 7)
	for i := 0; i < 10; i++ {
		if a.Next(0) != b.Next(0) {
			t.Fatal("same seed must give the same failure sequence")
		}
	}
}

func TestDisabled(t *testing.T) {
	inj := NewInjector(0, 1)
	if !math.IsInf(inj.Next(5), 1) {
		t.Fatal("mtti ≤ 0 must disable failures")
	}
}
