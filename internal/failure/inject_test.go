package failure

import (
	"testing"

	"repro/internal/fti"
)

func TestParsePlanGrammar(t *testing.T) {
	p, err := ParsePlan("proc@50, abft+proc@120 ,manifest+proc@200,shard+midckpt@300", 1)
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	evs := p.Events()
	if len(evs) != 4 {
		t.Fatalf("want 4 events, got %v", evs)
	}
	if evs[0].Iteration != 50 || len(evs[0].Kinds) != 1 || evs[0].Kinds[0] != ProcLoss {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Iteration != 120 || len(evs[1].Kinds) != 2 {
		t.Fatalf("event 1 = %+v", evs[1])
	}
	if evs[3].Kinds[0] != CorruptShard || evs[3].Kinds[1] != MidCheckpoint {
		t.Fatalf("event 3 = %+v", evs[3])
	}
}

func TestParsePlanMergesAndDedups(t *testing.T) {
	p, err := ParsePlan("proc@10,abft@10,proc@10", 1)
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	evs := p.Events()
	if len(evs) != 1 {
		t.Fatalf("same-iteration events must merge, got %v", evs)
	}
	if len(evs[0].Kinds) != 2 {
		t.Fatalf("duplicate kinds must dedup, got %v", evs[0].Kinds)
	}
}

func TestParsePlanRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{"proc", "proc@0", "proc@-3", "proc@x", "bogus@5", "proc+@5"} {
		if _, err := ParsePlan(spec, 1); err == nil {
			t.Errorf("spec %q was accepted", spec)
		}
	}
	if p, err := ParsePlan("  ", 1); err != nil || !p.Empty() {
		t.Fatalf("blank spec: plan %+v err %v, want empty plan", p, err)
	}
}

func TestPlanTakeConsumesInOrder(t *testing.T) {
	p, err := ParsePlan("proc@30,abft@10,shard@20", 1)
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if got := p.Take(5); got != nil {
		t.Fatalf("Take(5) = %v, want nil", got)
	}
	if got := p.Take(25); len(got) != 2 || got[0] != CorruptABFT || got[1] != CorruptShard {
		t.Fatalf("Take(25) = %v, want [abft shard] in iteration order", got)
	}
	if got := p.Take(25); got != nil {
		t.Fatalf("second Take(25) = %v, events must be consumed", got)
	}
	if got := p.Take(30); len(got) != 1 || got[0] != ProcLoss {
		t.Fatalf("Take(30) = %v, want [proc]", got)
	}
	if !p.Empty() {
		t.Fatal("plan not empty after consuming everything")
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{ProcLoss, CorruptABFT, CorruptShard, CorruptManifest, MidCheckpoint} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip %v: got %v err %v", k, got, err)
		}
	}
}

// saveCheckpoint writes the registered state through a real
// Checkpointer so the corruption helpers face genuine objects.
func saveCheckpoint(t *testing.T, c *fti.Checkpointer) {
	t.Helper()
	if _, err := c.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
}

func TestCorruptLatestShardAndManifest(t *testing.T) {
	st := fti.NewMemStorage()
	c := fti.New(st, fti.Raw{})
	v := make([]float64, 256)
	for i := range v {
		v[i] = float64(i)
	}
	c.Protect("x", &v)
	if err := c.SetSharding(4, 0); err != nil {
		t.Fatalf("SetSharding: %v", err)
	}
	saveCheckpoint(t, c)

	p, _ := ParsePlan("", 99)
	name, err := CorruptLatestShard(st, p.Rand())
	if err != nil {
		t.Fatalf("CorruptLatestShard: %v", err)
	}
	if name == "" {
		t.Fatal("no shard name reported")
	}
	// The corrupted group must now fail to restore (CRC catches it).
	if err := c.Recover(); err == nil {
		t.Fatal("restore succeeded from a corrupted shard")
	}

	saveCheckpoint(t, c) // a fresh good checkpoint
	if _, err := CorruptLatestManifest(st); err != nil {
		t.Fatalf("CorruptLatestManifest: %v", err)
	}
	// keep=2: the walk falls back to the older (shard-corrupted)
	// checkpoint, which is also bad — everything is invalid now.
	if err := c.Recover(); err == nil {
		t.Fatal("restore succeeded with manifest and shard both corrupted")
	}
}

func TestCorruptHelpersWithoutCheckpoints(t *testing.T) {
	st := fti.NewMemStorage()
	if _, err := CorruptLatestShard(st, ParseMustPlan(t, "", 1).Rand()); err == nil {
		t.Fatal("CorruptLatestShard on empty storage must error")
	}
	if _, err := CorruptLatestManifest(st); err == nil {
		t.Fatal("CorruptLatestManifest on empty storage must error")
	}
}

// ParseMustPlan is a test helper: parse or fail.
func ParseMustPlan(t *testing.T, spec string, seed int64) *Plan {
	t.Helper()
	p, err := ParsePlan(spec, seed)
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", spec, err)
	}
	return p
}

// TestRateEstimatorRecoveryKindsOutsidePosterior pins the hardening
// contract: recovery observations classify how failures were handled
// but must never move the censored-exponential failure-rate posterior
// — an ABFT recovery is not a checkpoint restart, and neither is a
// second failure.
func TestRateEstimatorRecoveryKindsOutsidePosterior(t *testing.T) {
	e, err := NewRateEstimator(1000, 1)
	if err != nil {
		t.Fatalf("NewRateEstimator: %v", err)
	}
	e.ObserveFailure(500)
	e.ObserveFailure(900)
	before := e.Rate(1200)
	fails := e.Failures()

	e.ObserveRecovery(false) // ABFT reconstruction
	e.ObserveRecovery(false)
	e.ObserveRecovery(true) // checkpoint restart

	if after := e.Rate(1200); after != before {
		t.Fatalf("recovery observations moved the posterior: %.6g → %.6g", before, after)
	}
	if e.Failures() != fails {
		t.Fatalf("recovery observations changed the failure count: %d → %d", fails, e.Failures())
	}
	if e.ABFTRecoveries() != 2 || e.IORestarts() != 1 {
		t.Fatalf("recovery kinds miscounted: abft=%d io=%d, want 2/1", e.ABFTRecoveries(), e.IORestarts())
	}
}
