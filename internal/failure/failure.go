// Package failure injects fail-stop errors with exponentially
// distributed inter-arrival times, "a common behavior of a system for
// most of its lifetime" (paper §5.4). The paper's evaluation injects
// one failure per hour on average; failures may strike during
// computation, checkpointing, or recovery.
package failure

import (
	"fmt"
	"math"
	"math/rand"
)

// Injector draws failure times. It is deterministic per seed so
// experiments are reproducible.
type Injector struct {
	rng  *rand.Rand
	mtti float64
}

// NewInjector creates an injector with the given mean time to
// interruption in seconds. mtti ≤ 0 disables failures (Next returns
// +Inf).
func NewInjector(mtti float64, seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), mtti: mtti}
}

// MTTI returns the configured mean time to interruption.
func (i *Injector) MTTI() float64 { return i.mtti }

// Next returns the absolute time of the next failure after now.
func (i *Injector) Next(now float64) float64 {
	if i.mtti <= 0 {
		return math.Inf(1)
	}
	return now + i.rng.ExpFloat64()*i.mtti
}

// EstimateRate is the maximum-likelihood estimate of an exponential
// failure rate λ from observed inter-failure gaps (seconds each) plus
// an optional right-censored tail: the time the system has been
// running since the last failure (or since start) without failing.
// The censored observation enters the likelihood as exp(−λ·censored),
// so the MLE is
//
//	λ̂ = n / (Σ gaps + censored),
//
// the standard censored-exponential estimate — a run that ended (or
// has so far continued) without a failure still lowers the estimated
// rate instead of being discarded. With no completed gaps and no
// censored time there is no information and an error is returned; with
// censored time only, the MLE is 0 (no failure ever observed).
func EstimateRate(gaps []float64, censored float64) (float64, error) {
	if censored < 0 {
		return 0, fmt.Errorf("failure: negative censored time %g", censored)
	}
	total := censored
	for _, g := range gaps {
		if g < 0 {
			return 0, fmt.Errorf("failure: negative inter-failure gap %g", g)
		}
		total += g
	}
	if total <= 0 {
		return 0, fmt.Errorf("failure: no observed time to estimate a rate from")
	}
	return float64(len(gaps)) / total, nil
}

// RateEstimator is the incremental, prior-backed form of EstimateRate
// used by the adaptive checkpoint-interval controller: a Gamma(k, θ)
// conjugate prior expressed as weight pseudo-failures spread over
// weight·priorMTTI pseudo-seconds, updated with each observed failure.
// The posterior-mean rate is
//
//	λ̂(now) = (weight + failures) / (weight·priorMTTI + Σ gaps + (now − lastFailure)),
//
// where the last term is the right-censored current gap. The prior
// keeps the controller planning sensibly before the first failure
// (λ̂ → 1/priorMTTI) and washes out as real failures accumulate.
type RateEstimator struct {
	priorFailures float64
	priorSeconds  float64
	failures      int
	observed      float64 // Σ completed inter-failure gaps
	lastAt        float64 // absolute time of the last failure (or start)

	// Recovery bookkeeping, deliberately outside the posterior: how a
	// failure was recovered from (checkpoint-restart I/O vs an ABFT
	// algorithmic reconstruction) carries no information about the
	// failure *rate*, so these counters never enter Rate. Keeping them
	// here hardens the observation feed — a caller reporting both the
	// failure and its recovery cannot double-count an ABFT recovery as
	// a checkpoint restart (or as a second failure).
	ioRestarts     int
	abftRecoveries int
}

// NewRateEstimator creates an estimator with a prior mean time to
// interruption of priorMTTI seconds, worth weight pseudo-failures of
// evidence. priorMTTI and weight must be positive — a zero-information
// prior would make the pre-first-failure rate undefined.
func NewRateEstimator(priorMTTI, weight float64) (*RateEstimator, error) {
	if priorMTTI <= 0 {
		return nil, fmt.Errorf("failure: prior MTTI must be positive, got %g", priorMTTI)
	}
	if weight <= 0 {
		return nil, fmt.Errorf("failure: prior weight must be positive, got %g", weight)
	}
	return &RateEstimator{priorFailures: weight, priorSeconds: weight * priorMTTI}, nil
}

// ObserveFailure records a failure at absolute time now (seconds,
// non-decreasing across calls), closing the current inter-failure gap.
// A now earlier than the previous event is clamped to it (a zero gap).
func (e *RateEstimator) ObserveFailure(now float64) {
	if now < e.lastAt {
		now = e.lastAt
	}
	e.observed += now - e.lastAt
	e.lastAt = now
	e.failures++
}

// Rate returns the posterior-mean failure rate at absolute time now,
// including the right-censored gap since the last failure. now before
// the last event is clamped to it.
func (e *RateEstimator) Rate(now float64) float64 {
	if now < e.lastAt {
		now = e.lastAt
	}
	return (e.priorFailures + float64(e.failures)) /
		(e.priorSeconds + e.observed + (now - e.lastAt))
}

// MTTI returns 1/Rate(now): the estimated mean time to interruption.
func (e *RateEstimator) MTTI(now float64) float64 { return 1 / e.Rate(now) }

// Failures reports how many real (non-prior) failures were observed.
func (e *RateEstimator) Failures() int { return e.failures }

// ObserveRecovery records how a failure was recovered from: restartIO
// true means a checkpoint restart (PFS reads), false an ABFT
// algorithmic reconstruction (no restart I/O). The censored-
// exponential posterior is untouched either way — only ObserveFailure
// moves λ̂ — so ABFT recoveries are never double-counted as checkpoint
// restarts and recovery reporting cannot skew the failure rate.
func (e *RateEstimator) ObserveRecovery(restartIO bool) {
	if restartIO {
		e.ioRestarts++
	} else {
		e.abftRecoveries++
	}
}

// IORestarts reports how many recoveries read a stored checkpoint.
func (e *RateEstimator) IORestarts() int { return e.ioRestarts }

// ABFTRecoveries reports how many recoveries were algorithmic (no
// restart I/O).
func (e *RateEstimator) ABFTRecoveries() int { return e.abftRecoveries }
