// Package failure injects fail-stop errors with exponentially
// distributed inter-arrival times, "a common behavior of a system for
// most of its lifetime" (paper §5.4). The paper's evaluation injects
// one failure per hour on average; failures may strike during
// computation, checkpointing, or recovery.
package failure

import (
	"math"
	"math/rand"
)

// Injector draws failure times. It is deterministic per seed so
// experiments are reproducible.
type Injector struct {
	rng  *rand.Rand
	mtti float64
}

// NewInjector creates an injector with the given mean time to
// interruption in seconds. mtti ≤ 0 disables failures (Next returns
// +Inf).
func NewInjector(mtti float64, seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), mtti: mtti}
}

// MTTI returns the configured mean time to interruption.
func (i *Injector) MTTI() float64 { return i.mtti }

// Next returns the absolute time of the next failure after now.
func (i *Injector) Next(now float64) float64 {
	if i.mtti <= 0 {
		return math.Inf(1)
	}
	return now + i.rng.ExpFloat64()*i.mtti
}
