package failure

import (
	"math"
	"testing"
)

// TestEstimateRateExact: the MLE on hand-built traces is n/total.
func TestEstimateRateExact(t *testing.T) {
	cases := []struct {
		gaps     []float64
		censored float64
		want     float64
	}{
		{[]float64{100, 200, 300}, 0, 3.0 / 600},
		{[]float64{100, 200, 300}, 400, 3.0 / 1000},
		{nil, 500, 0},            // no failure in 500 s: λ̂ = 0
		{[]float64{50}, 0, 0.02}, // one gap
	}
	for _, c := range cases {
		got, err := EstimateRate(c.gaps, c.censored)
		if err != nil {
			t.Fatalf("EstimateRate(%v, %g): %v", c.gaps, c.censored, err)
		}
		if math.Abs(got-c.want) > 1e-15 {
			t.Errorf("EstimateRate(%v, %g) = %g, want %g", c.gaps, c.censored, got, c.want)
		}
	}
}

// TestEstimateRateErrors: degenerate inputs are rejected, not guessed.
func TestEstimateRateErrors(t *testing.T) {
	if _, err := EstimateRate(nil, 0); err == nil {
		t.Error("no observed time should error")
	}
	if _, err := EstimateRate([]float64{-1}, 0); err == nil {
		t.Error("negative gap should error")
	}
	if _, err := EstimateRate([]float64{1}, -2); err == nil {
		t.Error("negative censored time should error")
	}
}

// TestEstimateRateRecoversInjectorRate: on a long synthetic trace from
// the exponential injector the MLE converges to the true rate.
func TestEstimateRateRecoversInjectorRate(t *testing.T) {
	const mtti = 250.0
	inj := NewInjector(mtti, 11)
	var gaps []float64
	now := 0.0
	for i := 0; i < 20000; i++ {
		next := inj.Next(now)
		gaps = append(gaps, next-now)
		now = next
	}
	got, err := EstimateRate(gaps, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got*mtti - 1); rel > 0.03 {
		t.Fatalf("MLE %.6f, want ≈ %.6f (rel err %.3f)", got, 1/mtti, rel)
	}
}

// TestEstimateRateCensoringLowersRate: appending failure-free runtime
// strictly lowers the estimate.
func TestEstimateRateCensoringLowersRate(t *testing.T) {
	gaps := []float64{100, 150, 200}
	base, _ := EstimateRate(gaps, 0)
	cens, _ := EstimateRate(gaps, 1000)
	if cens >= base {
		t.Fatalf("censored tail did not lower the rate: %g >= %g", cens, base)
	}
}

// TestRateEstimatorPriorBeforeFirstFailure: before any observation the
// posterior mean is the prior rate, decaying as censored time accrues.
func TestRateEstimatorPriorBeforeFirstFailure(t *testing.T) {
	e, err := NewRateEstimator(3600, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Rate(0); math.Abs(got-1.0/3600) > 1e-15 {
		t.Fatalf("prior rate %g, want %g", got, 1.0/3600)
	}
	// After 3600 failure-free seconds the posterior halves: 1 pseudo-
	// failure over 7200 observed seconds.
	if got := e.Rate(3600); math.Abs(got-1.0/7200) > 1e-15 {
		t.Fatalf("censored prior rate %g, want %g", got, 1.0/7200)
	}
	if e.Failures() != 0 {
		t.Fatalf("no real failures observed, got %d", e.Failures())
	}
}

// TestRateEstimatorConvergesToTrueRate: the prior washes out as real
// failures accumulate.
func TestRateEstimatorConvergesToTrueRate(t *testing.T) {
	const mtti = 100.0
	e, err := NewRateEstimator(10000, 1) // prior 100× too pessimistic on MTTI
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(mtti, 5)
	now := 0.0
	for i := 0; i < 5000; i++ {
		now = inj.Next(now)
		e.ObserveFailure(now)
	}
	if rel := math.Abs(e.Rate(now)*mtti - 1); rel > 0.05 {
		t.Fatalf("posterior rate %.6f after 5000 failures, want ≈ %.6f", e.Rate(now), 1/mtti)
	}
	if got := e.MTTI(now); math.Abs(got-1/e.Rate(now)) > 1e-12 {
		t.Fatalf("MTTI %g inconsistent with Rate %g", got, e.Rate(now))
	}
}

// TestRateEstimatorMatchesBatchMLE: the incremental posterior with the
// prior folded out reproduces the batch EstimateRate on the same trace.
func TestRateEstimatorMatchesBatchMLE(t *testing.T) {
	gaps := []float64{120, 80, 260, 40}
	const tail = 90.0
	e, _ := NewRateEstimator(500, 2)
	now := 0.0
	for _, g := range gaps {
		now += g
		e.ObserveFailure(now)
	}
	got := e.Rate(now + tail)
	batch, _ := EstimateRate(gaps, tail)
	// Posterior = (w + n)/(w·prior + total); recover the batch MLE.
	w, prior := 2.0, 500.0
	want := (w + float64(len(gaps))) / (w*prior + float64(len(gaps))/batch)
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("incremental %g, want %g", got, want)
	}
}

// TestRateEstimatorClampsTimeTravel: a now earlier than the last event
// must not produce negative gaps or rates above the no-gap posterior.
func TestRateEstimatorClampsTimeTravel(t *testing.T) {
	e, _ := NewRateEstimator(100, 1)
	e.ObserveFailure(50)
	e.ObserveFailure(40) // clamped to 50: zero gap
	if e.Failures() != 2 {
		t.Fatalf("failures %d, want 2", e.Failures())
	}
	want := 3.0 / 150 // (1+2)/(100+50+0)
	if got := e.Rate(10); math.Abs(got-want) > 1e-15 {
		t.Fatalf("clamped rate %g, want %g", got, want)
	}
}

// TestNewRateEstimatorRejectsBadPrior: zero-information priors are
// invalid.
func TestNewRateEstimatorRejectsBadPrior(t *testing.T) {
	if _, err := NewRateEstimator(0, 1); err == nil {
		t.Error("zero prior MTTI accepted")
	}
	if _, err := NewRateEstimator(100, 0); err == nil {
		t.Error("zero prior weight accepted")
	}
	if _, err := NewRateEstimator(-5, -1); err == nil {
		t.Error("negative prior accepted")
	}
}
