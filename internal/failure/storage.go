package failure

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/fti"
)

// StorageInjector interposes between the resilient retry layer and a
// real Storage, injecting the storage fault kinds of the plan grammar
// (storagewrite, storageread, slowio, crash) plus seeded random fault
// campaigns. Injected errors carry their intended classification via
// fti.Classifier, so the retry layer treats an armed transient fault
// exactly like a real transient PFS error — and a campaign of them
// must be fully absorbed before the solver ever sees one.
//
// Faults fire on the *attempt*, not the operation: a transient fault
// armed once fails exactly one attempt, and the retry that follows
// reaches the inner store untouched. Safe for concurrent use (the
// shard layer's worker pool calls it from many goroutines).
type StorageInjector struct {
	inner fti.Storage

	mu         sync.Mutex
	rng        *rand.Rand
	prof       StorageProfile
	armedWrite int
	armedRead  int
	armedSlow  int
	crashArmed bool
	crashed    bool
	seenFirst  map[string]bool
	stats      InjectStats
}

// StorageProfile configures the injector's continuous (per-attempt)
// fault behavior; the zero profile injects nothing and only armed
// one-shot faults fire.
type StorageProfile struct {
	// Rate is the per-attempt fault probability for reads and writes,
	// drawn from the seeded stream.
	Rate float64
	// TransientFrac is the fraction of injected faults that are
	// transient (the rest are permanent). Out-of-range values clamp;
	// an unset (zero) value with a nonzero Rate means all-transient —
	// set PermanentFrac-style mixes explicitly via a value in (0,1).
	TransientFrac float64
	// FailFirstAttempt makes the first attempt of every distinct
	// (op, name) pair fail transiently, exactly once — the
	// deterministic campaign mode: the injected-fault count equals the
	// number of distinct storage objects touched regardless of
	// scheduling, and every fault is absorbed by one retry.
	FailFirstAttempt bool
	// SlowDelay is the latency injected by armed slowio faults. Zero
	// means 2ms.
	SlowDelay time.Duration
}

// InjectStats counts what the injector did.
type InjectStats struct {
	WriteFaults     int // write attempts failed (transient + permanent)
	ReadFaults      int // read attempts failed
	TransientFaults int
	PermanentFaults int
	SlowOps         int // attempts delayed
	CrashedOps      int // attempts rejected while crashed
}

// Total returns the number of injected error faults (excluding
// delays).
func (s InjectStats) Total() int { return s.WriteFaults + s.ReadFaults }

// ErrCrashed is what every operation returns between a crash arming
// and Revive — classified permanent so the retry layer fails fast,
// exactly like a node that lost its PFS mount.
var ErrCrashed = &InjectedError{Class: fti.ClassPermanent, Msg: "failure: storage crashed (awaiting revive)"}

// InjectedError is a fault manufactured by the injector; it
// self-classifies (fti.Classifier) so the retry layer's taxonomy sees
// the intended class, not a string guess.
type InjectedError struct {
	Class fti.ErrClass
	Msg   string
}

// Error returns the injected fault's message.
func (e *InjectedError) Error() string { return e.Msg }

// FaultClass implements fti.Classifier.
func (e *InjectedError) FaultClass() fti.ErrClass { return e.Class }

// NewStorageInjector wraps inner with a seeded injector; prof may be
// the zero profile (armed one-shot faults only).
func NewStorageInjector(inner fti.Storage, seed int64, prof StorageProfile) *StorageInjector {
	if prof.SlowDelay <= 0 {
		prof.SlowDelay = 2 * time.Millisecond
	}
	if prof.TransientFrac <= 0 {
		prof.TransientFrac = 1
	}
	if prof.TransientFrac > 1 {
		prof.TransientFrac = 1
	}
	return &StorageInjector{
		inner:     inner,
		rng:       rand.New(rand.NewSource(seed)),
		prof:      prof,
		seenFirst: map[string]bool{},
	}
}

// Unwrap returns the wrapped Storage.
func (si *StorageInjector) Unwrap() fti.Storage { return si.inner }

// ArmWrite schedules the next n write attempts to fail per the seeded
// transient/permanent mix.
func (si *StorageInjector) ArmWrite(n int) {
	si.mu.Lock()
	si.armedWrite += n
	si.mu.Unlock()
}

// ArmRead schedules the next n read attempts to fail.
func (si *StorageInjector) ArmRead(n int) {
	si.mu.Lock()
	si.armedRead += n
	si.mu.Unlock()
}

// ArmSlow schedules the next n attempts (read or write) to be delayed
// by the profile's SlowDelay.
func (si *StorageInjector) ArmSlow(n int) {
	si.mu.Lock()
	si.armedSlow += n
	si.mu.Unlock()
}

// ArmCrash makes the next write attempt crash the store: the write
// leaves a partial "<name>.tmp" artifact on the inner store (the
// commit protocol's crash points 1–2), then every operation fails
// with ErrCrashed until Revive.
func (si *StorageInjector) ArmCrash() {
	si.mu.Lock()
	si.crashArmed = true
	si.mu.Unlock()
}

// Revive brings a crashed store back — the restart path: the caller
// then runs fti.Fsck to sweep the partial artifacts before recovery.
func (si *StorageInjector) Revive() {
	si.mu.Lock()
	si.crashed = false
	si.crashArmed = false
	si.mu.Unlock()
}

// Crashed reports whether the store is currently dead.
func (si *StorageInjector) Crashed() bool {
	si.mu.Lock()
	defer si.mu.Unlock()
	return si.crashed
}

// Stats returns a snapshot of the injection accounting.
func (si *StorageInjector) Stats() InjectStats {
	si.mu.Lock()
	defer si.mu.Unlock()
	return si.stats
}

// decide runs the per-attempt gate for op ("write" or "read") on
// name. It returns an error to inject, a delay to impose (0 = none),
// and for writes whether to crash.
func (si *StorageInjector) decide(op, name string) (inject error, delay time.Duration, crash bool) {
	si.mu.Lock()
	defer si.mu.Unlock()
	if si.crashed {
		si.stats.CrashedOps++
		return ErrCrashed, 0, false
	}
	if op == "write" && si.crashArmed {
		si.crashed, si.crashArmed = true, false
		si.stats.CrashedOps++
		return nil, 0, true
	}
	if si.armedSlow > 0 {
		si.armedSlow--
		si.stats.SlowOps++
		delay = si.prof.SlowDelay
	}
	fault := false
	if op == "write" && si.armedWrite > 0 {
		si.armedWrite--
		fault = true
	}
	if op == "read" && si.armedRead > 0 {
		si.armedRead--
		fault = true
	}
	if !fault && si.prof.FailFirstAttempt {
		key := op + ":" + name
		if !si.seenFirst[key] {
			si.seenFirst[key] = true
			si.stats.TransientFaults++
			si.countFault(op)
			return &InjectedError{Class: fti.ClassTransient,
				Msg: fmt.Sprintf("failure: injected transient %s fault on %s (first attempt)", op, name)}, delay, false
		}
	}
	if !fault && si.prof.Rate > 0 && si.rng.Float64() < si.prof.Rate {
		fault = true
	}
	if !fault {
		return nil, delay, false
	}
	class := fti.ClassTransient
	if si.rng.Float64() >= si.prof.TransientFrac {
		class = fti.ClassPermanent
		si.stats.PermanentFaults++
	} else {
		si.stats.TransientFaults++
	}
	si.countFault(op)
	return &InjectedError{Class: class,
		Msg: fmt.Sprintf("failure: injected %s %s fault on %s", class, op, name)}, delay, false
}

func (si *StorageInjector) countFault(op string) {
	if op == "write" {
		si.stats.WriteFaults++
	} else {
		si.stats.ReadFaults++
	}
}

// Write injects armed/seeded write faults, crash behavior, and delays
// ahead of the inner store's Write.
func (si *StorageInjector) Write(name string, data []byte) error {
	return si.write(name, data, si.inner.Write)
}

// WriteBatched forwards to the inner store's batch path (or Write)
// under the same fault gate.
func (si *StorageInjector) WriteBatched(name string, data []byte) error {
	inner := si.inner.Write
	if bw, ok := si.inner.(interface {
		WriteBatched(name string, data []byte) error
	}); ok {
		inner = bw.WriteBatched
	}
	return si.write(name, data, inner)
}

func (si *StorageInjector) write(name string, data []byte, inner func(string, []byte) error) error {
	inject, delay, crash := si.decide("write", name)
	if delay > 0 {
		time.Sleep(delay)
	}
	if crash {
		// The crash strikes mid-commit: a partial temp file has been
		// created and fsynced, but the rename never happened (crash
		// point 2). Best effort — a dead store that can't even leave
		// debris is fine too.
		if len(data) > 0 {
			_ = si.inner.Write(name+".tmp", data[:(len(data)+1)/2])
		}
		return ErrCrashed
	}
	if inject != nil {
		return inject
	}
	return inner(name, data)
}

// Read injects armed/seeded read faults and delays ahead of the inner
// store's Read.
func (si *StorageInjector) Read(name string) ([]byte, error) {
	inject, delay, _ := si.decide("read", name)
	if delay > 0 {
		time.Sleep(delay)
	}
	if inject != nil {
		return nil, inject
	}
	return si.inner.Read(name)
}

// Delete passes through unless crashed.
func (si *StorageInjector) Delete(name string) error {
	si.mu.Lock()
	dead := si.crashed
	if dead {
		si.stats.CrashedOps++
	}
	si.mu.Unlock()
	if dead {
		return ErrCrashed
	}
	return si.inner.Delete(name)
}

// List passes through unless crashed.
func (si *StorageInjector) List() ([]string, error) {
	si.mu.Lock()
	dead := si.crashed
	if dead {
		si.stats.CrashedOps++
	}
	si.mu.Unlock()
	if dead {
		return nil, ErrCrashed
	}
	return si.inner.List()
}

// SweepTemp forwards to the inner store's sweeper (fsck runs after
// Revive, through the injector).
func (si *StorageInjector) SweepTemp() ([]string, error) {
	ts, ok := si.inner.(fti.TempSweeper)
	if !ok {
		return nil, nil
	}
	return ts.SweepTemp()
}
