// Package zfp implements a transform-based, error-bounded lossy
// compressor in the spirit of ZFP's fixed-accuracy mode (Lindstrom,
// TVCG 2014), the block-transform comparator the paper cites. Data is
// processed in fixed-size blocks; each block is rotated into a
// decorrelated basis by an orthonormal DCT-II, the coefficients are
// uniformly quantized with a step chosen so the L∞ reconstruction
// error never exceeds the requested bound, and the quantized integers
// are zigzag-varint coded and entropy-compressed.
//
// This is a simplified cousin of real ZFP (which uses a custom lifted
// transform and bit-plane coding), but it preserves the properties the
// paper relies on: a hard absolute error bound, block locality, and
// transform-style ratio behaviour that differs from SZ's
// prediction-style behaviour on 1D solver state.
package zfp

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
)

// BlockSize is the number of samples per transform block.
const BlockSize = 32

const magic = "ZFG1"

// basisCache maps block length to its orthonormal DCT-II basis.
var basisCache sync.Map // int -> [][]float64

// basis returns the n×n orthonormal DCT-II matrix.
func basis(n int) [][]float64 {
	if v, ok := basisCache.Load(n); ok {
		return v.([][]float64)
	}
	b := make([][]float64, n)
	for k := 0; k < n; k++ {
		b[k] = make([]float64, n)
		amp := math.Sqrt(2 / float64(n))
		if k == 0 {
			amp = math.Sqrt(1 / float64(n))
		}
		for i := 0; i < n; i++ {
			b[k][i] = amp * math.Cos(math.Pi*(float64(i)+0.5)*float64(k)/float64(n))
		}
	}
	basisCache.Store(n, b)
	return b
}

// Compress encodes x with the absolute error bound eb.
func Compress(x []float64, eb float64) ([]byte, error) {
	if eb <= 0 || math.IsNaN(eb) || math.IsInf(eb, 0) {
		return nil, fmt.Errorf("zfp: error bound must be positive and finite, got %v", eb)
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("zfp: non-finite value at index %d", i)
		}
	}
	n := len(x)

	// Quantized coefficient stream, zigzag varint coded.
	var raw bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	coeff := make([]float64, BlockSize)
	for off := 0; off < n; off += BlockSize {
		bl := BlockSize
		if off+bl > n {
			bl = n - off
		}
		bb := basis(bl)
		q := 2 * eb / math.Sqrt(float64(bl))
		for k := 0; k < bl; k++ {
			var c float64
			row := bb[k]
			for i := 0; i < bl; i++ {
				c += row[i] * x[off+i]
			}
			coeff[k] = math.Round(c / q)
			if math.Abs(coeff[k]) > 1e18 {
				return nil, fmt.Errorf("zfp: coefficient overflow; bound %g too small for data magnitude", eb)
			}
		}
		for k := 0; k < bl; k++ {
			z := zigzag(int64(coeff[k]))
			m := binary.PutUvarint(scratch[:], z)
			raw.Write(scratch[:m])
		}
	}

	// Entropy stage: DEFLATE over the varint stream.
	var comp bytes.Buffer
	w, err := flate.NewWriter(&comp, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(raw.Bytes()); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}

	out := []byte(magic)
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], uint64(n))
	out = append(out, b8[:]...)
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(eb))
	out = append(out, b8[:]...)
	return append(out, comp.Bytes()...), nil
}

// Decompress reverses Compress.
func Decompress(data []byte) ([]float64, error) {
	n, err := decodedLen(data)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	if err := decompressInto(data, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressInto reverses Compress into a caller-provided slice: dst
// must have exactly the stream's element count, and no output
// allocation is performed. dst is zeroed before the inverse transform
// accumulates into it, so it may hold stale values on entry; the
// reconstruction is bitwise identical to Decompress.
func DecompressInto(dst []float64, data []byte) error {
	n, err := decodedLen(data)
	if err != nil {
		return err
	}
	if n != len(dst) {
		return fmt.Errorf("zfp: stream holds %d values, dst has %d", n, len(dst))
	}
	return decompressInto(data, dst)
}

// decodedLen validates the stream header and returns its element count.
func decodedLen(data []byte) (int, error) {
	if len(data) < 20 || string(data[:4]) != magic {
		return 0, fmt.Errorf("zfp: bad magic")
	}
	n := int(binary.LittleEndian.Uint64(data[4:]))
	if n < 0 {
		return 0, fmt.Errorf("zfp: negative length")
	}
	// Every coefficient costs at least one varint byte before the
	// DEFLATE stage, and DEFLATE expands at most ~1032× (one byte per
	// stored bit plus framing), so a genuine stream can never claim
	// more values than that bound; checking before the caller
	// allocates keeps crafted headers from demanding terabytes.
	const maxDeflateExpansion = 1032
	if n > maxDeflateExpansion*(len(data)-20) {
		return 0, fmt.Errorf("zfp: %d values exceed %d payload bytes", n, len(data)-20)
	}
	return n, nil
}

// decompressInto reconstructs the stream into out (len(out) == n).
func decompressInto(data []byte, out []float64) error {
	n := len(out)
	eb := math.Float64frombits(binary.LittleEndian.Uint64(data[12:]))
	if eb <= 0 {
		return fmt.Errorf("zfp: corrupt error bound %v", eb)
	}
	r := flate.NewReader(bytes.NewReader(data[20:]))
	raw, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("zfp: inflate: %w", err)
	}

	// The inverse transform accumulates; stale destination contents
	// must not leak into the reconstruction.
	for i := range out {
		out[i] = 0
	}
	off := 0
	for blockOff := 0; blockOff < n; blockOff += BlockSize {
		bl := BlockSize
		if blockOff+bl > n {
			bl = n - blockOff
		}
		bb := basis(bl)
		q := 2 * eb / math.Sqrt(float64(bl))
		for k := 0; k < bl; k++ {
			z, m := binary.Uvarint(raw[off:])
			if m <= 0 {
				return fmt.Errorf("zfp: truncated coefficient stream")
			}
			off += m
			c := float64(unzigzag(z)) * q
			if c == 0 {
				continue
			}
			row := bb[k]
			for i := 0; i < bl; i++ {
				out[blockOff+i] += c * row[i]
			}
		}
	}
	return nil
}

// Ratio returns the compression ratio original/compressed in bytes.
func Ratio(n int, compressed []byte) float64 {
	if len(compressed) == 0 {
		return 0
	}
	return float64(8*n) / float64(len(compressed))
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
