// Package zfp implements a transform-based, error-bounded lossy
// compressor in the spirit of ZFP's fixed-accuracy mode (Lindstrom,
// TVCG 2014), the block-transform comparator the paper cites. Data is
// processed in fixed-size blocks; each block is rotated into a
// decorrelated basis by an orthonormal DCT-II, the coefficients are
// uniformly quantized with a step chosen so the L∞ reconstruction
// error never exceeds the requested bound, and the quantized integers
// are zigzag-varint coded and entropy-compressed.
//
// This is a simplified cousin of real ZFP (which uses a custom lifted
// transform and bit-plane coding), but it preserves the properties the
// paper relies on: a hard absolute error bound, block locality, and
// transform-style ratio behaviour that differs from SZ's
// prediction-style behaviour on 1D solver state.
package zfp

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/parallel"
)

// BlockSize is the number of samples per transform block.
const BlockSize = 32

const magic = "ZFG1"

// basisCache maps block length to its orthonormal DCT-II basis.
var basisCache sync.Map // int -> [][]float64

// basis returns the n×n orthonormal DCT-II matrix.
func basis(n int) [][]float64 {
	if v, ok := basisCache.Load(n); ok {
		return v.([][]float64)
	}
	b := make([][]float64, n)
	for k := 0; k < n; k++ {
		b[k] = make([]float64, n)
		amp := math.Sqrt(2 / float64(n))
		if k == 0 {
			amp = math.Sqrt(1 / float64(n))
		}
		for i := 0; i < n; i++ {
			b[k][i] = amp * math.Cos(math.Pi*(float64(i)+0.5)*float64(k)/float64(n))
		}
	}
	basisCache.Store(n, b)
	return b
}

// appendWriter is an io.Writer appending into a byte slice, so the
// DEFLATE stage emits straight into the output stream.
type appendWriter struct{ b []byte }

func (w *appendWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// flateWriters recycles BestSpeed flate.Writer state (~600 KiB of
// match-finder tables per writer) across compress calls.
var flateWriters sync.Pool

func getFlateWriter(w io.Writer) *flate.Writer {
	if v := flateWriters.Get(); v != nil {
		fw := v.(*flate.Writer)
		fw.Reset(w)
		return fw
	}
	fw, _ := flate.NewWriter(w, flate.BestSpeed) // BestSpeed is always a valid level
	return fw
}

// Compress encodes x with the absolute error bound eb.
func Compress(x []float64, eb float64) ([]byte, error) {
	return AppendCompress(nil, x, eb)
}

// AppendCompress is Compress appending to dst (which may be pooled
// scratch), returning the extended slice. The varint scratch stream
// and the DEFLATE state come from pools, so the only growth is dst
// itself — the blocked container uses this to keep per-block encode
// free of whole-payload intermediates.
func AppendCompress(dst []byte, x []float64, eb float64) ([]byte, error) {
	if eb <= 0 || math.IsNaN(eb) || math.IsInf(eb, 0) {
		return nil, fmt.Errorf("zfp: error bound must be positive and finite, got %v", eb)
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("zfp: non-finite value at index %d", i)
		}
	}
	n := len(x)

	// Quantized coefficient stream, zigzag varint coded, in pooled
	// scratch.
	raw := parallel.GetBytes(2*n + 64)
	var scratch [binary.MaxVarintLen64]byte
	var coeff [BlockSize]float64
	for off := 0; off < n; off += BlockSize {
		bl := BlockSize
		if off+bl > n {
			bl = n - off
		}
		bb := basis(bl)
		q := 2 * eb / math.Sqrt(float64(bl))
		for k := 0; k < bl; k++ {
			var c float64
			row := bb[k]
			for i := 0; i < bl; i++ {
				c += row[i] * x[off+i]
			}
			coeff[k] = math.Round(c / q)
			if math.Abs(coeff[k]) > 1e18 {
				parallel.PutBytes(raw)
				return nil, fmt.Errorf("zfp: coefficient overflow; bound %g too small for data magnitude", eb)
			}
		}
		for k := 0; k < bl; k++ {
			z := zigzag(int64(coeff[k]))
			m := binary.PutUvarint(scratch[:], z)
			raw = append(raw, scratch[:m]...)
		}
	}

	// Entropy stage: DEFLATE over the varint stream, straight onto the
	// header.
	aw := &appendWriter{b: dst}
	aw.b = append(aw.b, magic...)
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], uint64(n))
	aw.b = append(aw.b, b8[:]...)
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(eb))
	aw.b = append(aw.b, b8[:]...)
	w := getFlateWriter(aw)
	_, werr := w.Write(raw)
	cerr := w.Close()
	flateWriters.Put(w)
	parallel.PutBytes(raw)
	if werr != nil {
		return nil, werr
	}
	if cerr != nil {
		return nil, cerr
	}
	return aw.b, nil
}

// Decompress reverses Compress.
func Decompress(data []byte) ([]float64, error) {
	n, err := decodedLen(data)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	if err := decompressInto(data, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressInto reverses Compress into a caller-provided slice: dst
// must have exactly the stream's element count, and no output
// allocation is performed. The varint stream is decoded serially, then
// the inverse transforms — the expensive stage — run block-parallel
// across the worker pool; transform blocks are independent, so the
// reconstruction is bitwise identical to Decompress.
func DecompressInto(dst []float64, data []byte) error {
	n, err := decodedLen(data)
	if err != nil {
		return err
	}
	if n != len(dst) {
		return fmt.Errorf("zfp: stream holds %d values, dst has %d", n, len(dst))
	}
	return decompressInto(data, dst)
}

// decodedLen validates the stream header and returns its element count.
func decodedLen(data []byte) (int, error) {
	if len(data) < 20 || string(data[:4]) != magic {
		return 0, fmt.Errorf("zfp: bad magic")
	}
	n := int(binary.LittleEndian.Uint64(data[4:]))
	if n < 0 {
		return 0, fmt.Errorf("zfp: negative length")
	}
	// Every coefficient costs at least one varint byte before the
	// DEFLATE stage, and DEFLATE expands at most ~1032× (one byte per
	// stored bit plus framing), so a genuine stream can never claim
	// more values than that bound; checking before the caller
	// allocates keeps crafted headers from demanding terabytes.
	const maxDeflateExpansion = 1032
	if n > maxDeflateExpansion*(len(data)-20) {
		return 0, fmt.Errorf("zfp: %d values exceed %d payload bytes", n, len(data)-20)
	}
	return n, nil
}

// decompressInto reconstructs the stream into out (len(out) == n).
func decompressInto(data []byte, out []float64) error {
	n := len(out)
	eb := math.Float64frombits(binary.LittleEndian.Uint64(data[12:]))
	if eb <= 0 {
		return fmt.Errorf("zfp: corrupt error bound %v", eb)
	}
	r := flate.NewReader(bytes.NewReader(data[20:]))
	raw, err := readAllInto(parallel.GetBytes(2*n+64), r)
	if err != nil {
		parallel.PutBytes(raw)
		return fmt.Errorf("zfp: inflate: %w", err)
	}

	// Serial pass: the varint stream is sequential, so coefficient
	// boundaries are only known by scanning it once.
	vals := parallel.GetFloat64s(n)[:n]
	off := 0
	for k := 0; k < n; k++ {
		z, m := binary.Uvarint(raw[off:])
		if m <= 0 {
			parallel.PutBytes(raw)
			parallel.PutFloat64s(vals)
			return fmt.Errorf("zfp: truncated coefficient stream")
		}
		off += m
		vals[k] = float64(unzigzag(z))
	}
	parallel.PutBytes(raw)

	// Parallel pass: every BlockSize-sample inverse transform touches a
	// disjoint slice of out, so blocks reconstruct concurrently.
	nBlocks := (n + BlockSize - 1) / BlockSize
	parallel.For(nBlocks, parallel.Grain(nBlocks, 8, 4), func(lo, hi int) {
		for b := lo; b < hi; b++ {
			blockOff := b * BlockSize
			bl := BlockSize
			if blockOff+bl > n {
				bl = n - blockOff
			}
			bb := basis(bl)
			q := 2 * eb / math.Sqrt(float64(bl))
			dst := out[blockOff : blockOff+bl]
			for i := range dst {
				dst[i] = 0
			}
			for k := 0; k < bl; k++ {
				c := vals[blockOff+k] * q
				if c == 0 {
					continue
				}
				row := bb[k]
				for i := 0; i < bl; i++ {
					dst[i] += c * row[i]
				}
			}
		}
	})
	parallel.PutFloat64s(vals)
	return nil
}

// readAllInto reads r to EOF appending into buf, like io.ReadAll but
// reusing buf's capacity.
func readAllInto(buf []byte, r io.Reader) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		m, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+m]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// Ratio returns the compression ratio original/compressed in bytes.
func Ratio(n int, compressed []byte) float64 {
	if len(compressed) == 0 {
		return 0
	}
	return float64(8*n) / float64(len(compressed))
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
