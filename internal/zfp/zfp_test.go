package zfp

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func roundTrip(t *testing.T, x []float64, eb float64) []float64 {
	t.Helper()
	comp, err := Compress(x, eb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(x) {
		t.Fatalf("decompressed %d values, want %d", len(got), len(x))
	}
	return got
}

func assertBound(t *testing.T, x, got []float64, eb float64) {
	t.Helper()
	for i := range x {
		if d := math.Abs(x[i] - got[i]); d > eb*(1+1e-9) {
			t.Fatalf("index %d: error %g > bound %g", i, d, eb)
		}
	}
}

func TestBoundSmoothData(t *testing.T) {
	x := sparse.SmoothField(10000, 1)
	const eb = 1e-4
	comp, err := Compress(x, eb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	assertBound(t, x, got, eb)
	if r := Ratio(len(x), comp); r < 4 {
		t.Fatalf("ratio %.1f too low for smooth data", r)
	}
}

func TestBoundRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 3000)
	for i := range x {
		x[i] = rng.NormFloat64() * 50
	}
	const eb = 1e-3
	got := roundTrip(t, x, eb)
	assertBound(t, x, got, eb)
}

func TestNonBlockAlignedLength(t *testing.T) {
	for _, n := range []int{1, 5, BlockSize - 1, BlockSize, BlockSize + 1, 3*BlockSize + 17} {
		x := sparse.SmoothField(n, int64(n))
		got := roundTrip(t, x, 1e-5)
		assertBound(t, x, got, 1e-5)
	}
}

func TestEmpty(t *testing.T) {
	got := roundTrip(t, nil, 1e-4)
	if len(got) != 0 {
		t.Fatalf("got %d values", len(got))
	}
}

func TestInvalidInputs(t *testing.T) {
	if _, err := Compress([]float64{1}, 0); err == nil {
		t.Fatal("expected error for zero bound")
	}
	if _, err := Compress([]float64{math.NaN()}, 1e-4); err == nil {
		t.Fatal("expected error for NaN")
	}
	if _, err := Decompress([]byte("junk")); err == nil {
		t.Fatal("expected error for bad magic")
	}
	comp, err := Compress(sparse.SmoothField(200, 3), 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(comp[:len(comp)-4]); err == nil {
		t.Fatal("expected error for truncated stream")
	}
}

func TestCoefficientOverflowRejected(t *testing.T) {
	x := []float64{1e30, 1e30}
	if _, err := Compress(x, 1e-10); err == nil {
		t.Fatal("expected coefficient-overflow error")
	}
}

func TestTighterBoundLargerOutput(t *testing.T) {
	x := sparse.SmoothField(20000, 4)
	loose, err := Compress(x, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Compress(x, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tight) <= len(loose) {
		t.Fatalf("tighter bound should cost more bytes: %d vs %d", len(tight), len(loose))
	}
}

func TestBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(1500)
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(float64(i)/30)*5 + rng.NormFloat64()*0.1
		}
		eb := math.Pow(10, -1-float64(rng.Intn(7)))
		comp, err := Compress(x, eb)
		if err != nil {
			return false
		}
		got, err := Decompress(comp)
		if err != nil || len(got) != n {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-got[i]) > eb*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestDecompressIntoMatchesDecompress: the in-place decode must be
// bitwise identical to the allocating one even when dst holds stale
// values (the inverse transform accumulates, so DecompressInto zeroes
// dst first).
func TestDecompressIntoMatchesDecompress(t *testing.T) {
	x := sparse.SmoothField(10_000, 11)
	comp, err := Compress(x, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, len(x))
	for i := range got {
		got[i] = 1e300 // stale contents must not leak into the sum
	}
	if err := DecompressInto(got, comp); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("index %d: into %g != alloc %g", i, got[i], want[i])
		}
	}
}

// TestDecompressIntoLengthMismatch: a wrong-size destination is an
// error, never a partial decode.
func TestDecompressIntoLengthMismatch(t *testing.T) {
	x := sparse.SmoothField(1000, 12)
	comp, err := Compress(x, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if err := DecompressInto(make([]float64, len(x)-1), comp); err == nil {
		t.Fatal("short dst accepted")
	}
	if err := DecompressInto(make([]float64, len(x)+1), comp); err == nil {
		t.Fatal("long dst accepted")
	}
	if err := DecompressInto(make([]float64, len(x)), []byte("junk")); err == nil {
		t.Fatal("junk stream accepted")
	}
}

// TestDecompressRejectsCraftedLength: a header claiming more values
// than any DEFLATE payload of that size could encode must error
// before the output allocation.
func TestDecompressRejectsCraftedLength(t *testing.T) {
	crafted := make([]byte, 40)
	copy(crafted, "ZFG1")
	binary.LittleEndian.PutUint64(crafted[4:], 1<<45)
	binary.LittleEndian.PutUint64(crafted[12:], math.Float64bits(1e-4))
	if _, err := Decompress(crafted); err == nil {
		t.Fatal("crafted zfp length accepted")
	}
}
