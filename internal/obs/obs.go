// Package obs is the repo's dependency-free observability substrate:
// a metrics registry (atomic counters, gauges, fixed-bucket
// histograms) with Prometheus-text and JSON exposition, and a
// lifecycle tracer (trace.go) exporting Chrome trace_event JSON.
//
// Design constraints, in order:
//
//   - nil-safe: a nil *Registry hands out nil handles, and every
//     method on a nil handle is a no-op. Instrumented packages call
//     their handles unconditionally; a run with observability
//     disabled pays one predictable-branch nil check per site.
//   - lock-free hot path: handle creation takes the registry mutex
//     once; Inc/Add/Set/Observe are plain atomics on the handle.
//   - deterministic-trace-safe: nothing here feeds back into the
//     numerics; instrumented and bare runs converge bitwise
//     identically (asserted in internal/sim tests).
//   - labeled child scopes: Registry.With derives a view over the
//     same store with extra labels, so a future multi-tenant ckptd
//     can mount one scope per stream (tenant="..."), snapshot them
//     together, and Merge snapshots across processes.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value metric dimension.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for Label{k, v}.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// Counter is a monotonically increasing uint64. Nil receivers no-op.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64. Nil receivers no-op.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds v (CAS loop).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with inclusive ("le") upper
// bounds plus an implicit +Inf bucket. Nil receivers no-op.
type Histogram struct {
	bounds []float64 // ascending upper bounds; counts has len(bounds)+1
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// Observe records v into its bucket (first bound >= v, else +Inf).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// LatencyBuckets returns the default latency bounds: a 1-2.5-5
// progression from 10 µs to 100 s. Covers the sub-ms capture stall
// and the multi-second sharded PFS write with the same histogram.
func LatencyBuckets() []float64 {
	var b []float64
	for d := 1e-5; d < 200; d *= 10 {
		b = append(b, d, 2.5*d, 5*d)
	}
	return b
}

// ByteBuckets returns the default size bounds: powers of 4 from
// 1 KiB to 16 GiB.
func ByteBuckets() []float64 {
	var b []float64
	for v := 1024.0; v <= 16*1024*1024*1024; v *= 4 {
		b = append(b, v)
	}
	return b
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type mkey struct{ name, labels string }

type entry struct {
	name   string
	labels []Label
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

type registryCore struct {
	mu      sync.Mutex
	entries map[mkey]*entry
}

// Registry hands out metric handles. It is a cheap view (shared
// store + label scope); With derives child scopes. The zero value is
// not usable — use New. A nil *Registry is the disabled mode: every
// method returns a nil (no-op) handle.
type Registry struct {
	core   *registryCore
	labels []Label // sorted by key
	lkey   string  // canonical encoding of labels
}

// New returns an empty registry with no labels.
func New() *Registry {
	return &Registry{core: &registryCore{entries: make(map[mkey]*entry)}}
}

// With derives a child scope carrying the scope's labels plus the
// given ones (child wins on key collision). With on nil returns nil,
// so disabled mode propagates through scoping.
func (r *Registry) With(labels ...Label) *Registry {
	if r == nil {
		return nil
	}
	merged := make(map[string]string, len(r.labels)+len(labels))
	for _, l := range r.labels {
		merged[l.Key] = l.Value
	}
	for _, l := range labels {
		merged[l.Key] = l.Value
	}
	out := make([]Label, 0, len(merged))
	for k, v := range merged {
		out = append(out, Label{Key: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return &Registry{core: r.core, labels: out, lkey: encodeLabels(out)}
}

func encodeLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(strconv.Quote(l.Value))
	}
	return sb.String()
}

func (r *Registry) get(name string, kind metricKind, bounds []float64) *entry {
	if !ValidMetricName(name) {
		panic(fmt.Sprintf("obs: metric name %q violates the subsystem_name_unit convention", name))
	}
	isTotal := strings.HasSuffix(name, "_total")
	if kind == kindCounter && !isTotal {
		panic(fmt.Sprintf("obs: counter %q must end in _total", name))
	}
	if kind != kindCounter && isTotal {
		panic(fmt.Sprintf("obs: %s %q must not end in _total", kind, name))
	}
	k := mkey{name: name, labels: r.lkey}
	c := r.core
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, e.kind))
		}
		return e
	}
	e := &entry{name: name, labels: r.labels, kind: kind}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	case kindHistogram:
		e.h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
	}
	c.entries[k] = e
	return e
}

// Counter returns (creating if needed) the counter with this name in
// this scope. Nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, kindCounter, nil).c
}

// Gauge returns (creating if needed) the gauge with this name in
// this scope. Nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, kindGauge, nil).g
}

// Histogram returns (creating if needed) the histogram with this
// name in this scope; bounds are used only on first creation. Nil
// registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(name, kindHistogram, bounds).h
}

// MetricData is one metric's state in a Snapshot.
type MetricData struct {
	Name   string    `json:"name"`
	Labels []Label   `json:"labels,omitempty"`
	Type   string    `json:"type"`
	Value  float64   `json:"value,omitempty"`  // counter, gauge
	Count  uint64    `json:"count,omitempty"`  // histogram
	Sum    float64   `json:"sum,omitempty"`    // histogram
	Bounds []float64 `json:"bounds,omitempty"` // histogram upper bounds
	Counts []uint64  `json:"counts,omitempty"` // histogram per-bucket, len(Bounds)+1 (+Inf last)
}

// Quantile estimates the q-quantile (0..1) of a histogram metric by
// linear interpolation within the containing bucket. Returns NaN for
// non-histograms or empty histograms.
func (m *MetricData) Quantile(q float64) float64 {
	if m.Type != "histogram" || m.Count == 0 {
		return math.NaN()
	}
	rank := q * float64(m.Count)
	var cum uint64
	lo := 0.0
	for i, c := range m.Counts {
		hi := math.Inf(1)
		if i < len(m.Bounds) {
			hi = m.Bounds[i]
		}
		if float64(cum+c) >= rank {
			if c == 0 || math.IsInf(hi, 1) {
				return lo
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += c
		lo = hi
	}
	return lo
}

// Snapshot is a point-in-time copy of a registry, sorted by name
// then labels. Per-value reads are atomic; the snapshot as a whole
// is not a consistent cut under concurrent updates.
type Snapshot struct {
	Metrics []MetricData `json:"metrics"`
}

// Snapshot copies the full store (all scopes, not just this view's
// labels). Nil registries snapshot empty.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	c := r.core
	type pair struct {
		k mkey
		e *entry
	}
	c.mu.Lock()
	pairs := make([]pair, 0, len(c.entries))
	for k, e := range c.entries {
		pairs = append(pairs, pair{k, e})
	}
	c.mu.Unlock()
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].k.name != pairs[j].k.name {
			return pairs[i].k.name < pairs[j].k.name
		}
		return pairs[i].k.labels < pairs[j].k.labels
	})
	s := Snapshot{Metrics: make([]MetricData, 0, len(pairs))}
	for _, p := range pairs {
		e := p.e
		m := MetricData{Name: e.name, Labels: e.labels, Type: e.kind.String()}
		switch e.kind {
		case kindCounter:
			m.Value = float64(e.c.Value())
		case kindGauge:
			m.Value = e.g.Value()
		case kindHistogram:
			m.Count = e.h.Count()
			m.Sum = e.h.Sum()
			m.Bounds = append([]float64(nil), e.h.bounds...)
			m.Counts = make([]uint64, len(e.h.counts))
			for i := range e.h.counts {
				m.Counts[i] = e.h.counts[i].Load()
			}
		}
		s.Metrics = append(s.Metrics, m)
	}
	return s
}

// Get returns the metric with this name and exactly these labels, or
// nil. Intended for tests and report printers.
func (s Snapshot) Get(name string, labels ...Label) *MetricData {
	want := encodeLabels(sortedLabels(labels))
	for i := range s.Metrics {
		if s.Metrics[i].Name == name && encodeLabels(s.Metrics[i].Labels) == want {
			return &s.Metrics[i]
		}
	}
	return nil
}

func sortedLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Merge combines two snapshots: counters and histograms add (bounds
// must match), gauges take o's value (o is the newer snapshot).
// Metrics present in only one side pass through.
func (s Snapshot) Merge(o Snapshot) (Snapshot, error) {
	type slot struct {
		m    MetricData
		seen bool
	}
	idx := make(map[mkey]*slot, len(s.Metrics))
	order := make([]mkey, 0, len(s.Metrics)+len(o.Metrics))
	for _, m := range s.Metrics {
		k := mkey{m.Name, encodeLabels(m.Labels)}
		cp := m
		cp.Bounds = append([]float64(nil), m.Bounds...)
		cp.Counts = append([]uint64(nil), m.Counts...)
		idx[k] = &slot{m: cp}
		order = append(order, k)
	}
	for _, m := range o.Metrics {
		k := mkey{m.Name, encodeLabels(m.Labels)}
		sl, ok := idx[k]
		if !ok {
			cp := m
			cp.Bounds = append([]float64(nil), m.Bounds...)
			cp.Counts = append([]uint64(nil), m.Counts...)
			idx[k] = &slot{m: cp}
			order = append(order, k)
			continue
		}
		if sl.m.Type != m.Type {
			return Snapshot{}, fmt.Errorf("obs: merge type mismatch for %s: %s vs %s", m.Name, sl.m.Type, m.Type)
		}
		switch m.Type {
		case "counter":
			sl.m.Value += m.Value
		case "gauge":
			sl.m.Value = m.Value
		case "histogram":
			if len(sl.m.Bounds) != len(m.Bounds) {
				return Snapshot{}, fmt.Errorf("obs: merge bucket mismatch for %s", m.Name)
			}
			for i, b := range m.Bounds {
				if sl.m.Bounds[i] != b {
					return Snapshot{}, fmt.Errorf("obs: merge bucket mismatch for %s", m.Name)
				}
			}
			sl.m.Count += m.Count
			sl.m.Sum += m.Sum
			for i, c := range m.Counts {
				sl.m.Counts[i] += c
			}
		}
	}
	out := Snapshot{Metrics: make([]MetricData, 0, len(order))}
	for _, k := range order {
		out.Metrics = append(out.Metrics, idx[k].m)
	}
	sort.Slice(out.Metrics, func(i, j int) bool {
		if out.Metrics[i].Name != out.Metrics[j].Name {
			return out.Metrics[i].Name < out.Metrics[j].Name
		}
		return encodeLabels(out.Metrics[i].Labels) < encodeLabels(out.Metrics[j].Labels)
	})
	return out, nil
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteProm writes the snapshot in the Prometheus text exposition
// format (v0.0.4): # TYPE lines, _bucket{le=...}/_sum/_count
// expansion for histograms.
func (s Snapshot) WriteProm(w io.Writer) error {
	lastType := ""
	for _, m := range s.Metrics {
		if m.Name != lastType {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Type); err != nil {
				return err
			}
			lastType = m.Name
		}
		switch m.Type {
		case "counter", "gauge":
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.Name, promLabels(m.Labels, "", ""), promFloat(m.Value)); err != nil {
				return err
			}
		case "histogram":
			var cum uint64
			for i, c := range m.Counts {
				le := "+Inf"
				if i < len(m.Bounds) {
					le = promFloat(m.Bounds[i])
				}
				cum += c
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, promLabels(m.Labels, "le", le), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, promLabels(m.Labels, "", ""), promFloat(m.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, promLabels(m.Labels, "", ""), cum); err != nil {
				return err
			}
		}
	}
	return nil
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func promLabels(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	for _, l := range labels {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(strconv.Quote(l.Value))
	}
	if extraKey != "" {
		if !first {
			sb.WriteByte(',')
		}
		sb.WriteString(extraKey)
		sb.WriteByte('=')
		sb.WriteString(strconv.Quote(extraVal))
	}
	sb.WriteByte('}')
	return sb.String()
}

// WriteProm writes the registry's current snapshot; see Snapshot.WriteProm.
func (r *Registry) WriteProm(w io.Writer) error { return r.Snapshot().WriteProm(w) }

// WriteJSON writes the registry's current snapshot; see Snapshot.WriteJSON.
func (r *Registry) WriteJSON(w io.Writer) error { return r.Snapshot().WriteJSON(w) }
