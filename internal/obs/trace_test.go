package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin(TrackSolver, CatCheckpoint, SpanEncode)
	sp.End()
	sp.EndArgs(map[string]float64{"bytes": 1})
	tr.Complete(TrackSolver, CatCheckpoint, SpanWrite, 0, 1, nil)
	tr.Instant(TrackSolver, CatSolver, SpanFailure)
	tr.SetTrackName(9, "x")
	if tr.Now() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Error("nil tracer must read zero")
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer chrome output not JSON: %v", err)
	}
}

func TestTracerVirtualClock(t *testing.T) {
	now := 0.0
	tr := NewTracerWithClock(func() float64 { return now })
	sp := tr.Begin(TrackSolver, CatCheckpoint, SpanCapture)
	now = 1.5
	sp.EndArgs(map[string]float64{"bytes": 8e6})
	tr.Complete(TrackPipeline, CatCheckpoint, SpanBackground, 1.5, 2.0, nil)
	tr.InstantAt(TrackSolver, CatSolver, SpanFailure, 4.0)
	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events, want 3", len(ev))
	}
	if ev[0].Start != 0 || ev[0].Dur != 1.5 || ev[0].Name != SpanCapture || ev[0].Args["bytes"] != 8e6 {
		t.Errorf("span event wrong: %+v", ev[0])
	}
	if ev[1].Track != TrackPipeline || ev[1].Start != 1.5 || ev[1].Dur != 2.0 {
		t.Errorf("complete event wrong: %+v", ev[1])
	}
	if !ev[2].Instant || ev[2].Start != 4.0 {
		t.Errorf("instant event wrong: %+v", ev[2])
	}
}

// TestChromeTraceSchema validates the exported JSON against the
// trace_event contract: a traceEvents array whose entries carry
// name/ph/pid/tid, "X" events with numeric ts and dur in
// microseconds, "M" metadata naming every default track, and "i"
// instants with a scope.
func TestChromeTraceSchema(t *testing.T) {
	now := 0.0
	tr := NewTracerWithClock(func() float64 { return now })
	tr.Complete(TrackSolver, CatCheckpoint, SpanEncode, 0.25, 0.5, map[string]float64{"bytes": 42})
	tr.InstantAt(TrackSolver, CatSolver, SpanFailure, 1.0)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if doc.DisplayUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayUnit)
	}
	named := map[string]bool{}
	var sawX, sawI bool
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		if _, ok := e["name"].(string); !ok {
			t.Fatalf("event missing name: %v", e)
		}
		if _, ok := e["pid"].(float64); !ok {
			t.Fatalf("event missing pid: %v", e)
		}
		if _, ok := e["tid"].(float64); !ok {
			t.Fatalf("event missing tid: %v", e)
		}
		switch ph {
		case "M":
			if e["name"] == "thread_name" {
				args := e["args"].(map[string]any)
				named[args["name"].(string)] = true
			}
		case "X":
			sawX = true
			ts, ok := e["ts"].(float64)
			if !ok || ts != 0.25*1e6 {
				t.Errorf("X event ts = %v, want 250000 µs", e["ts"])
			}
			dur, ok := e["dur"].(float64)
			if !ok || dur != 0.5*1e6 {
				t.Errorf("X event dur = %v, want 500000 µs", e["dur"])
			}
		case "i":
			sawI = true
			if e["s"] != "t" {
				t.Errorf("instant missing scope: %v", e)
			}
		default:
			t.Errorf("unexpected ph %q", ph)
		}
	}
	if !sawX || !sawI {
		t.Error("missing X or i events")
	}
	for _, track := range []string{"solver", "checkpoint-pipeline", "recovery"} {
		if !named[track] {
			t.Errorf("default track %q not named via M event", track)
		}
	}
}

func TestTracerEventCap(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < maxTraceEvents+10; i++ {
		tr.Complete(TrackSolver, CatSolver, SpanCompute, 0, 1, nil)
	}
	if got := len(tr.Events()); got != maxTraceEvents {
		t.Errorf("retained %d events, want cap %d", got, maxTraceEvents)
	}
	if got := tr.Dropped(); got != 10 {
		t.Errorf("Dropped = %d, want 10", got)
	}
	// The drop count must surface in the export, not vanish.
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DroppedEvents int `json:"droppedEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.DroppedEvents != 10 {
		t.Errorf("droppedEvents = %d, want 10", doc.DroppedEvents)
	}
}
