package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestMetricNameConvention(t *testing.T) {
	for _, name := range AllMetricNames {
		if !ValidMetricName(name) {
			t.Errorf("catalog name %q violates the subsystem_name_unit convention", name)
		}
	}
	bad := []string{
		"CamelCase_seconds", "fti_encode", "fti_encode_ms",
		"_fti_seconds", "fti__encode_seconds", "fti_encode_seconds_",
	}
	for _, name := range bad {
		if ValidMetricName(name) {
			t.Errorf("ValidMetricName(%q) = true, want false", name)
		}
	}
}

func TestRegistryPanicsOnBadNames(t *testing.T) {
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	r := New()
	mustPanic(func() { r.Counter("not-a-name") })
	mustPanic(func() { r.Counter("test_missing_suffix_seconds") }) // counters end _total
	mustPanic(func() { r.Gauge("test_gauge_total") })              // gauges must not
	mustPanic(func() {
		r.Counter("test_reregister_total")
		r.Gauge("test_reregister_total")
	})
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := New()
	h := r.Histogram("test_bounds_seconds", []float64{1, 10, 100})
	// le semantics: a value exactly on a bound lands in that bucket.
	for _, v := range []float64{0.5, 1.0} {
		h.Observe(v) // bucket 0 (le=1)
	}
	h.Observe(1.0000001) // bucket 1 (le=10)
	h.Observe(10)        // bucket 1
	h.Observe(99.9)      // bucket 2 (le=100)
	h.Observe(100.1)     // +Inf bucket
	h.Observe(1e12)      // +Inf bucket
	m := r.Snapshot().Get("test_bounds_seconds")
	if m == nil {
		t.Fatal("histogram missing from snapshot")
	}
	want := []uint64{2, 2, 1, 2}
	for i, c := range m.Counts {
		if c != want[i] {
			t.Errorf("bucket %d: count %d, want %d (all: %v)", i, c, want[i], m.Counts)
		}
	}
	if m.Count != 7 {
		t.Errorf("Count = %d, want 7", m.Count)
	}
	wantSum := 0.5 + 1 + 1.0000001 + 10 + 99.9 + 100.1 + 1e12
	if math.Abs(m.Sum-wantSum) > 1e-6*wantSum {
		t.Errorf("Sum = %g, want %g", m.Sum, wantSum)
	}
}

func TestLatencyAndByteBucketsAscend(t *testing.T) {
	for _, b := range [][]float64{LatencyBuckets(), ByteBuckets()} {
		if len(b) < 8 {
			t.Fatalf("suspiciously few buckets: %v", b)
		}
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				t.Fatalf("bounds not strictly ascending at %d: %v", i, b)
			}
		}
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := New()
	c := r.Counter("test_concurrent_total")
	g := r.Gauge("test_concurrent_seconds")
	h := r.Histogram("test_concurrent_bytes", ByteBuckets())
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(1024 * (w + 1)))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Errorf("gauge = %g, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestSnapshotMergeRoundTrip(t *testing.T) {
	mk := func(n uint64) *Registry {
		r := New()
		r.Counter("test_events_total").Add(n)
		r.Gauge("test_level_ratio").Set(float64(n))
		h := r.Histogram("test_size_bytes", []float64{10, 100})
		for i := uint64(0); i < n; i++ {
			h.Observe(float64(i * 30))
		}
		r.With(L("tier", "abft")).Counter("test_events_total").Add(2 * n)
		return r
	}
	a, b := mk(3), mk(5)
	merged, err := a.Snapshot().Merge(b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip through JSON and compare against a registry that saw
	// both loads.
	var buf bytes.Buffer
	if err := merged.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if got := back.Get("test_events_total").Value; got != 8 {
		t.Errorf("merged unlabeled counter = %g, want 8", got)
	}
	if got := back.Get("test_events_total", L("tier", "abft")).Value; got != 16 {
		t.Errorf("merged labeled counter = %g, want 16", got)
	}
	if got := back.Get("test_level_ratio").Value; got != 5 {
		t.Errorf("merged gauge = %g, want 5 (newer side wins)", got)
	}
	hm := back.Get("test_size_bytes")
	if hm.Count != 8 {
		t.Errorf("merged histogram count = %d, want 8", hm.Count)
	}
	// 3-observation side: 0,30,60 → buckets le10:1, le100:2; 5-side:
	// 0,30,60,90,120 → le10:1, le100:3, +Inf:1.
	wantCounts := []uint64{2, 5, 1}
	for i, c := range hm.Counts {
		if c != wantCounts[i] {
			t.Errorf("merged bucket %d = %d, want %d", i, c, wantCounts[i])
		}
	}

	// Bucket-mismatch and type-mismatch merges must error.
	r2 := New()
	r2.Histogram("test_size_bytes", []float64{1, 2, 3})
	if _, err := a.Snapshot().Merge(r2.Snapshot()); err == nil {
		t.Error("merge with mismatched buckets: want error")
	}
	r3 := New()
	r3.Gauge("test_size_bytes")
	if _, err := a.Snapshot().Merge(r3.Snapshot()); err == nil {
		t.Error("merge with mismatched types: want error")
	}
}

func TestLabeledScopes(t *testing.T) {
	r := New()
	r.Counter("test_scoped_total").Inc()
	child := r.With(L("tenant", "a"), L("tier", "checkpoint"))
	child.Counter("test_scoped_total").Add(4)
	// Child of child overrides on key collision.
	grand := child.With(L("tier", "abft"))
	grand.Counter("test_scoped_total").Add(9)

	s := r.Snapshot()
	if got := s.Get("test_scoped_total").Value; got != 1 {
		t.Errorf("root scope = %g, want 1", got)
	}
	if got := s.Get("test_scoped_total", L("tenant", "a"), L("tier", "checkpoint")).Value; got != 4 {
		t.Errorf("child scope = %g, want 4", got)
	}
	if got := s.Get("test_scoped_total", L("tier", "abft"), L("tenant", "a")).Value; got != 9 {
		t.Errorf("grandchild scope = %g, want 9", got)
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("test_nil_total")
	g := r.With(L("a", "b")).Gauge("test_nil_seconds")
	h := r.Histogram("test_nil_bytes", ByteBuckets())
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(42)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles must read zero")
	}
	if s := r.Snapshot(); len(s.Metrics) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestWriteProm(t *testing.T) {
	r := New()
	r.Counter("test_events_total").Add(3)
	r.With(L("tier", "abft")).Counter("test_events_total").Add(7)
	r.Gauge("test_level_ratio").Set(0.25)
	h := r.Histogram("test_lat_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_events_total counter\n",
		"test_events_total 3\n",
		"test_events_total{tier=\"abft\"} 7\n",
		"# TYPE test_level_ratio gauge\n",
		"test_level_ratio 0.25\n",
		"# TYPE test_lat_seconds histogram\n",
		"test_lat_seconds_bucket{le=\"0.1\"} 1\n",
		"test_lat_seconds_bucket{le=\"1\"} 2\n",
		"test_lat_seconds_bucket{le=\"+Inf\"} 3\n",
		"test_lat_seconds_sum 5.55\n",
		"test_lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q; got:\n%s", want, out)
		}
	}
	// One TYPE line per metric name even with multiple label sets.
	if n := strings.Count(out, "# TYPE test_events_total"); n != 1 {
		t.Errorf("TYPE line repeated %d times", n)
	}
}

func TestQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("test_q_seconds", []float64{1, 2, 3, 4})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%4) + 0.5) // 25 each in buckets 0..3
	}
	m := r.Snapshot().Get("test_q_seconds")
	if p50 := m.Quantile(0.5); p50 < 1 || p50 > 3 {
		t.Errorf("p50 = %g, want within [1,3]", p50)
	}
	if p99 := m.Quantile(0.99); p99 < 3 || p99 > 4 {
		t.Errorf("p99 = %g, want within [3,4]", p99)
	}
	empty := &MetricData{Type: "histogram"}
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty histogram quantile must be NaN")
	}
}
