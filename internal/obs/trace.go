package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer records lifecycle spans and exports them as Chrome
// trace_event JSON (load at chrome://tracing or ui.perfetto.dev).
//
// Times are float64 seconds on the tracer's clock. The default clock
// is monotonic wall time since NewTracer; the virtual-time simulator
// supplies its own clock (or calls Complete with explicit virtual
// times), so simulated and real runs emit the same schema.
//
// A nil *Tracer is the disabled mode: every method (and Span.End on
// the zero Span) is a no-op. Begin/Complete take one short mutex
// hold; tracing sits on millisecond-scale lifecycle events, never in
// per-element loops.
type Tracer struct {
	clock func() float64

	mu      sync.Mutex
	events  []traceEvent
	tracks  map[int]string
	dropped int
}

// maxTraceEvents caps the retained event list (~26 MB worst case);
// past it events are counted in Dropped() instead of silently lost.
const maxTraceEvents = 1 << 18

type traceEvent struct {
	track int
	cat   string
	name  string
	ph    byte    // 'X' complete, 'i' instant
	start float64 // seconds
	dur   float64 // seconds, 'X' only
	args  map[string]float64
}

// NewTracer returns a tracer on monotonic wall time (zero = now).
func NewTracer() *Tracer {
	start := time.Now()
	return NewTracerWithClock(func() float64 { return time.Since(start).Seconds() })
}

// NewTracerWithClock returns a tracer reading the given clock
// (seconds). Used by the virtual-time simulator.
func NewTracerWithClock(clock func() float64) *Tracer {
	return &Tracer{clock: clock, tracks: map[int]string{
		TrackSolver:   "solver",
		TrackPipeline: "checkpoint-pipeline",
		TrackRecovery: "recovery",
	}}
}

// Now returns the tracer's clock reading (0 on nil).
func (t *Tracer) Now() float64 {
	if t == nil {
		return 0
	}
	return t.clock()
}

// SetTrackName names a track (Chrome "thread") lane.
func (t *Tracer) SetTrackName(track int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tracks[track] = name
	t.mu.Unlock()
}

// Span is an open interval returned by Begin. The zero Span (and any
// span from a nil tracer) is inert.
type Span struct {
	t     *Tracer
	track int
	cat   string
	name  string
	start float64
}

// Begin opens a span at the current clock reading.
func (t *Tracer) Begin(track int, cat, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, track: track, cat: cat, name: name, start: t.clock()}
}

// End closes the span at the current clock reading.
func (s Span) End() { s.EndArgs(nil) }

// EndArgs closes the span with numeric args attached.
func (s Span) EndArgs(args map[string]float64) {
	if s.t == nil {
		return
	}
	end := s.t.clock()
	s.t.Complete(s.track, s.cat, s.name, s.start, end-s.start, args)
}

// Complete records a finished span with explicit start/duration in
// clock seconds. This is the entry point for virtual-time callers.
func (t *Tracer) Complete(track int, cat, name string, start, dur float64, args map[string]float64) {
	if t == nil {
		return
	}
	t.push(traceEvent{track: track, cat: cat, name: name, ph: 'X', start: start, dur: dur, args: args})
}

// Instant records a zero-duration marker at the current clock reading.
func (t *Tracer) Instant(track int, cat, name string) {
	if t == nil {
		return
	}
	t.InstantAt(track, cat, name, t.clock())
}

// InstantAt records a zero-duration marker at an explicit clock time.
func (t *Tracer) InstantAt(track int, cat, name string, ts float64) {
	if t == nil {
		return
	}
	t.push(traceEvent{track: track, cat: cat, name: name, ph: 'i', start: ts})
}

func (t *Tracer) push(e traceEvent) {
	t.mu.Lock()
	if len(t.events) >= maxTraceEvents {
		t.dropped++
	} else {
		t.events = append(t.events, e)
	}
	t.mu.Unlock()
}

// Dropped returns how many events were discarded past the cap.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SpanEvent is a recorded event, exposed for tests and reporters.
type SpanEvent struct {
	Track   int
	Cat     string
	Name    string
	Instant bool
	Start   float64 // seconds
	Dur     float64 // seconds
	Args    map[string]float64
}

// Events returns a copy of the recorded events in insertion order.
func (t *Tracer) Events() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanEvent, len(t.events))
	for i, e := range t.events {
		out[i] = SpanEvent{
			Track: e.track, Cat: e.cat, Name: e.name,
			Instant: e.ph == 'i', Start: e.start, Dur: e.dur, Args: e.args,
		}
	}
	return out
}

// chromeEvent is the trace_event wire format. ts/dur are microseconds.
type chromeEvent struct {
	Name  string             `json:"name"`
	Cat   string             `json:"cat,omitempty"`
	Ph    string             `json:"ph"`
	Ts    float64            `json:"ts"`
	Dur   *float64           `json:"dur,omitempty"`
	Pid   int                `json:"pid"`
	Tid   int                `json:"tid"`
	Scope string             `json:"s,omitempty"`
	Args  map[string]float64 `json:"args,omitempty"`
}

type chromeArgsName struct {
	Name string `json:"name"`
}

type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args chromeArgsName `json:"args"`
}

type chromeTrace struct {
	TraceEvents   []any  `json:"traceEvents"`
	DisplayUnit   string `json:"displayTimeUnit"`
	DroppedEvents int    `json:"droppedEvents,omitempty"`
}

// WriteChrome writes the trace in Chrome trace_event JSON ("X"
// complete events plus "M" thread_name metadata, ts/dur in
// microseconds, one tid per track).
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := w.Write([]byte(`{"traceEvents":[]}`))
		return err
	}
	t.mu.Lock()
	events := append([]traceEvent(nil), t.events...)
	tracks := make(map[int]string, len(t.tracks))
	for k, v := range t.tracks {
		tracks[k] = v
	}
	dropped := t.dropped
	t.mu.Unlock()

	out := chromeTrace{DisplayUnit: "ms", DroppedEvents: dropped}
	trackIDs := make([]int, 0, len(tracks))
	for id := range tracks {
		trackIDs = append(trackIDs, id)
	}
	sort.Ints(trackIDs)
	for _, id := range trackIDs {
		out.TraceEvents = append(out.TraceEvents, chromeMeta{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: id,
			Args: chromeArgsName{Name: tracks[id]},
		})
	}
	for _, e := range events {
		ce := chromeEvent{
			Name: e.name, Cat: e.cat, Ts: e.start * 1e6,
			Pid: 1, Tid: e.track, Args: e.args,
		}
		switch e.ph {
		case 'X':
			ce.Ph = "X"
			d := e.dur * 1e6
			ce.Dur = &d
		case 'i':
			ce.Ph = "i"
			ce.Scope = "t"
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
