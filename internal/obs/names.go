package obs

import "regexp"

// This file is the single source of truth for every metric and span
// name the instrumented packages emit. CI lints that no other file
// spells out a metric name literal, and TestMetricNameConvention
// checks every catalog entry against the convention below.
//
// Metric name convention: subsystem_name_unit
//
//   - lower_snake_case, first token is the owning subsystem
//     (fti, shard, core, abft, adapt, sim, ...);
//   - the final token is the unit: seconds | bytes | ratio |
//     iterations for gauges and histograms, total for counters
//     (counters that accumulate a quantity keep the quantity's unit
//     before the suffix, e.g. shard_read_bytes_total);
//   - counters always end in _total, gauges and histograms never do.
const (
	// fti — checkpoint capture/encode/write stages and the restore walk.
	MFTICaptureSeconds        = "fti_capture_seconds"
	MFTIEncodeSeconds         = "fti_encode_seconds"
	MFTIWriteSeconds          = "fti_write_seconds"
	MFTIRestoreSeconds        = "fti_restore_seconds"
	MFTIRawBytes              = "fti_checkpoint_raw_bytes"
	MFTIEncodedBytes          = "fti_checkpoint_encoded_bytes"
	MFTICompressionRatio      = "fti_compression_ratio"
	MFTICheckpointsTotal      = "fti_checkpoints_total"
	MFTICheckpointErrorsTotal = "fti_checkpoint_errors_total"
	MFTIRestoreAttemptsTotal  = "fti_restore_attempts_total"
	MFTIRestoreRejectsTotal   = "fti_restore_rejects_total"
	MFTIRestoreReadBytesTotal = "fti_restore_read_bytes_total"

	// shard — per-shard object I/O under the manifest-last protocol.
	MShardWriteSeconds       = "shard_write_seconds"
	MShardReadSeconds        = "shard_read_seconds"
	MShardWritesTotal        = "shard_writes_total"
	MShardReadsTotal         = "shard_reads_total"
	MShardWrittenBytesTotal  = "shard_written_bytes_total"
	MShardReadBytesTotal     = "shard_read_bytes_total"
	MShardCRCFailuresTotal   = "shard_crc_failures_total"
	MShardReadFailuresTotal  = "shard_read_failures_total"
	MShardRereadsTotal       = "shard_rereads_total"
	MShardRereadRepairsTotal = "shard_reread_repairs_total"

	// storage — the fault-tolerant Storage wrapper (fti.Resilient):
	// retry/backoff on transient errors, hedged reads, degraded-mode
	// exhaustion.
	MStorageRetriesTotal         = "storage_retries_total"
	MStorageRetryExhaustedTotal  = "storage_retry_exhausted_total"
	MStoragePermanentErrorsTotal = "storage_permanent_errors_total"
	MStorageHedgedReadsTotal     = "storage_hedged_reads_total"
	MStorageHedgeWinsTotal       = "storage_hedge_wins_total"
	MStorageRetryDelaySeconds    = "storage_retry_delay_seconds"

	// fti scrub/fsck — background CRC verification and repair of
	// committed checkpoints, and startup crash-consistency sweeps.
	MFTIScrubSweepsTotal      = "fti_scrub_sweeps_total"
	MFTIScrubCorruptionsTotal = "fti_scrub_corruptions_total"
	MFTIScrubRepairsTotal     = "fti_scrub_repairs_total"
	MFTIScrubDroppedTotal     = "fti_scrub_dropped_total"
	MFTIAsyncAbortedTotal     = "fti_async_aborted_saves_total"

	// core — Manager lifecycle: commits, aborts, tiered recoveries.
	MCoreCheckpointsCommittedTotal = "core_checkpoints_committed_total"
	MCoreCheckpointsAbortedTotal   = "core_checkpoints_aborted_total"
	MCoreDegradedSavesTotal        = "core_degraded_saves_total"
	MCoreRecoveriesTotal           = "core_recoveries_total" // labeled tier=<tier>
	MCoreRecoverySeconds           = "core_recovery_seconds"
	MCoreIntervalSeconds           = "core_interval_seconds"

	// abft — guard observations and reconstructions.
	MABFTObservesTotal         = "abft_observes_total"
	MABFTReconstructionsTotal  = "abft_reconstructions_total"
	MABFTRejectsTotal          = "abft_rejects_total"
	MABFTChecksumFailuresTotal = "abft_checksum_failures_total"
	MABFTLocalIterationsTotal  = "abft_local_iterations_total"

	// adapt — the interval controller's estimator state and re-plans.
	MAdaptReplansTotal      = "adapt_replans_total"
	MAdaptIntervalSeconds   = "adapt_interval_seconds"
	MAdaptMTTISeconds       = "adapt_mtti_seconds"
	MAdaptCheckpointSeconds = "adapt_checkpoint_seconds"
	MAdaptRecoverySeconds   = "adapt_recovery_seconds"
	MAdaptCompressionRatio  = "adapt_compression_ratio"

	// sim — the virtual-time harness (same schema, virtual clock).
	MSimFailuresTotal         = "sim_failures_total"
	MSimCheckpointsTotal      = "sim_checkpoints_total"
	MSimCheckpointAbortsTotal = "sim_checkpoint_aborts_total"
	MSimRecoveriesTotal       = "sim_recoveries_total" // labeled tier=<tier>
	MSimElapsedSeconds        = "sim_elapsed_seconds"

	// quality — the numerical-telemetry layer: per-checkpoint lossy
	// distortion audits and post-recovery convergence-delay
	// attribution. Audits are per committed save (sampled); violations
	// count audited vectors whose observed error exceeded the encoder's
	// requested bound. The error gauge is the last audited
	// observed/requested ratio (≤ 1 means the bound held), the
	// compression-ratio gauge the last audited achieved ratio. The
	// iteration metrics are Theorem 2's realized quantities: extra
	// iterations a restart cost beyond replaying the pre-failure
	// trajectory (N′), and iterations until the post-restart residual
	// re-reached the residual at failure.
	MQualityAuditsTotal         = "quality_audits_total"
	MQualityViolationsTotal     = "quality_bound_violations_total"
	MQualityErrorRatio          = "quality_observed_error_ratio"
	MQualityCompressionRatio    = "quality_compression_ratio"
	MQualityAuditSeconds        = "quality_audit_seconds"
	MQualityExtraIterTotal      = "quality_extra_iterations_total"
	MQualityReacquireIterations = "quality_reacquire_iterations"
)

// AllMetricNames is the catalog CI and the README table are generated
// against; TestMetricNameConvention asserts every entry matches
// ValidMetricName and the counter/_total rule.
var AllMetricNames = []string{
	MFTICaptureSeconds, MFTIEncodeSeconds, MFTIWriteSeconds,
	MFTIRestoreSeconds, MFTIRawBytes, MFTIEncodedBytes,
	MFTICompressionRatio, MFTICheckpointsTotal, MFTICheckpointErrorsTotal,
	MFTIRestoreAttemptsTotal, MFTIRestoreRejectsTotal, MFTIRestoreReadBytesTotal,
	MShardWriteSeconds, MShardReadSeconds, MShardWritesTotal,
	MShardReadsTotal, MShardWrittenBytesTotal, MShardReadBytesTotal,
	MShardCRCFailuresTotal, MShardReadFailuresTotal,
	MShardRereadsTotal, MShardRereadRepairsTotal,
	MStorageRetriesTotal, MStorageRetryExhaustedTotal,
	MStoragePermanentErrorsTotal, MStorageHedgedReadsTotal,
	MStorageHedgeWinsTotal, MStorageRetryDelaySeconds,
	MFTIScrubSweepsTotal, MFTIScrubCorruptionsTotal,
	MFTIScrubRepairsTotal, MFTIScrubDroppedTotal, MFTIAsyncAbortedTotal,
	MCoreCheckpointsCommittedTotal, MCoreCheckpointsAbortedTotal,
	MCoreDegradedSavesTotal,
	MCoreRecoveriesTotal, MCoreRecoverySeconds, MCoreIntervalSeconds,
	MABFTObservesTotal, MABFTReconstructionsTotal, MABFTRejectsTotal,
	MABFTChecksumFailuresTotal, MABFTLocalIterationsTotal,
	MAdaptReplansTotal, MAdaptIntervalSeconds, MAdaptMTTISeconds,
	MAdaptCheckpointSeconds, MAdaptRecoverySeconds, MAdaptCompressionRatio,
	MSimFailuresTotal, MSimCheckpointsTotal, MSimCheckpointAbortsTotal,
	MSimRecoveriesTotal, MSimElapsedSeconds,
	MQualityAuditsTotal, MQualityViolationsTotal, MQualityErrorRatio,
	MQualityCompressionRatio, MQualityAuditSeconds,
	MQualityExtraIterTotal, MQualityReacquireIterations,
}

var nameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*_(seconds|bytes|ratio|total|iterations)$`)

// ValidMetricName reports whether name follows the
// subsystem_name_unit convention. The Registry panics on names that
// don't — metric names are compile-time constants, not data.
func ValidMetricName(name string) bool { return nameRE.MatchString(name) }

// Trace tracks. One Chrome "thread" lane per concurrent activity, so
// the async pipeline's overlap with solver iterations is visible.
const (
	TrackSolver   = 1 // the solver goroutine: iterations, capture stalls, sync saves
	TrackPipeline = 2 // background encode+write of the async double buffer
	TrackRecovery = 3 // restore walks and tiered recovery attempts
	TrackScrubber = 4 // background CRC scrub sweeps and fsck startup sweeps
)

// Span categories and names. Real (wall-clock) runs and the
// virtual-time simulator emit the same schema.
const (
	CatCheckpoint = "checkpoint"
	CatRecovery   = "recovery"
	CatSolver     = "solver"
	CatStorage    = "storage"
	CatQuality    = "quality"

	SpanCapture     = "capture"
	SpanEncode      = "encode"
	SpanWrite       = "write"
	SpanShardWrite  = "shard-write"
	SpanShardCommit = "shard-commit"
	SpanCheckpoint  = "checkpoint"   // fused encode+write when stages aren't split (sim sync mode)
	SpanBackground  = "encode+write" // async background stage as one span (sim async mode)
	SpanRestore     = "restore"      // one fti restore attempt (one checkpoint read+decode)
	SpanCompute     = "compute"      // solver iterations between lifecycle events
	SpanFailure     = "failure"      // instant marker
	SpanTierPrefix  = "tier:"        // + RecoveryTier.String(), one span per TierAttempt
	SpanScrub       = "scrub-sweep"  // one background scrub pass over committed groups
	SpanFsck        = "fsck"         // startup crash-consistency sweep

	SpanQualityAudit     = "quality-audit"   // one audited vector save (distortion stats)
	SpanQualityViolation = "bound-violation" // instant: audited error exceeded the bound
	SpanQualityReacquire = "reacquire"       // post-recovery residual catch-up window
)
